"""Conservative parallel-DES: one cluster simulation across many kernels.

Everything below :mod:`repro.harness` parallelizes *across* runs; this
module parallelizes *inside* one run. The simulated nodes are sharded
over partitions, each partition owns a full :class:`~repro.sim.kernel.Simulator`
(any :mod:`repro.sim.queues` implementation), and the partitions
synchronize with the classic Chandy–Misra–Bryant null-message protocol:

* Every cross-partition channel carries a **guarantee** — a lower bound
  on the timestamp of anything that can still arrive on it. The initial
  guarantee is the channel's **lookahead** (the minimum wire latency
  between the two node sets, see :mod:`repro.network.lookahead`).
* A partition only fires events *strictly below* its **horizon** (the
  min over inbound guarantees); "strictly" because a message may arrive
  at exactly the horizon with an earlier-sorting priority.
* Whenever a partition's lower bound advances it sends **null messages**
  (pure promises, ``lower_bound + lookahead``) so its neighbours' horizons
  keep moving; real messages carry the same promise implicitly.

Determinism contract (the whole point)
--------------------------------------
Per-seed results are **byte-identical** to the serial kernel. The kernel
fires in ``(time, priority, seq)`` order and ``seq`` — a per-kernel
scheduling counter — differs between one shared kernel and *k* partition
kernels. So the partition layer never lets ``seq`` decide: every event it
schedules gets a packed tuple priority

``(user_priority, kind, origin, counter)``

where local events use ``kind=0, origin=node, counter=per-node counter``
and message deliveries use ``kind=1, origin=src_node, counter=per-(src,dst)
channel counter`` assigned at *send* time. Counters depend only on each
node's own deterministic execution order, so the packed keys — and hence
the global fire order, node logs, and digests — are identical whichever
mode runs the plan and whichever queue implementation backs it
(``tests/sim/test_partition.py`` and ``tests/property/test_prop_partition.py``
pin this, the same way ``test_kernel_fastpath`` pins the queue equivalence).

Execution modes
---------------
``serial``
    One kernel owns every node — the reference implementation the digests
    are compared against. Zero synchronization overhead.
``inproc``
    *k* partition kernels round-robined cooperatively in this process.
    Runs the full null-message machinery (same messages, same horizons)
    without OS processes — this is what the equivalence suite sweeps.
``process``
    *k* spawned worker processes, one kernel each, pipes per channel, a
    coordinator in the parent. The only mode that uses extra cores (the
    GIL serializes ``inproc``); programs must be picklable (module-level
    classes) exactly like :func:`repro.harness.parallel.run_grid` tasks.

Bounded runs follow the PR 7 kernel semantics: ``run(until=T)`` fires
everything ``<= T`` and reports clock ``T``; ``run(max_events=N)`` raises
only when work remains (process mode may overfire up to ``partitions×N``
before the guard trips — the raise *decision* is exact, the cut point is
not); a :meth:`PartitionedSimulation.stop` requested before ``run`` fires
zero events and is consumed.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Optional, Sequence, Union

from ..errors import ConfigError, SimulationError
from .events import Priority
from .kernel import Simulator
from .queues import EventQueue
from .rng import RngStreams

__all__ = [
    "PARTITION_MODES",
    "PartitionPlan",
    "PartitionProgram",
    "NodeContext",
    "PartitionedSimulation",
]

_INF = float("inf")
_NEG_INF = float("-inf")

#: execution modes accepted by :class:`PartitionedSimulation`
PARTITION_MODES = ("serial", "inproc", "process")

#: seconds the coordinator waits on worker pipes before declaring the
#: partitioned run wedged (a crashed worker surfaces as EOF much earlier)
_WORKER_WAIT_S = 300.0


# ---------------------------------------------------------------------------
# plan


@dataclass(frozen=True)
class PartitionPlan:
    """Static description of a partitioned run: topology + sharding.

    ``assignment[i]`` is the partition owning node ``i``. ``latency_us``
    is the uniform node-to-node message latency; ``links`` (optional,
    ``nodes × nodes``) overrides it per directed pair. Cross-partition
    latencies are the **lookahead** and must be strictly positive —
    conservative synchronization cannot make progress across a
    zero-latency cut (:func:`repro.network.lookahead.require_lookahead`).
    """

    nodes: int
    partitions: int
    assignment: tuple[int, ...]
    latency_us: float = 2.0
    links: Optional[tuple[tuple[float, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError(f"plan needs >= 1 node, got {self.nodes}")
        if not 1 <= self.partitions <= self.nodes:
            raise ConfigError(
                f"partitions must be in 1..nodes ({self.nodes}), got {self.partitions}"
            )
        if len(self.assignment) != self.nodes:
            raise ConfigError(
                f"assignment has {len(self.assignment)} entries for {self.nodes} nodes"
            )
        seen = set()
        for node, pid in enumerate(self.assignment):
            if not 0 <= pid < self.partitions:
                raise ConfigError(
                    f"node {node} assigned to partition {pid}, valid range is "
                    f"0..{self.partitions - 1}"
                )
            seen.add(pid)
        if len(seen) != self.partitions:
            empty = sorted(set(range(self.partitions)) - seen)
            raise ConfigError(f"partitions {empty} own no nodes")
        if self.links is not None:
            if len(self.links) != self.nodes or any(
                len(row) != self.nodes for row in self.links
            ):
                raise ConfigError(
                    f"links must be a {self.nodes}x{self.nodes} matrix"
                )
            for row in self.links:
                for v in row:
                    if not math.isfinite(v) or v < 0:
                        raise ConfigError(f"link latency must be finite >= 0, got {v!r}")
        elif not math.isfinite(self.latency_us) or self.latency_us < 0:
            raise ConfigError(
                f"latency_us must be finite >= 0, got {self.latency_us!r}"
            )
        # force lookahead validation up front: a bad cut should fail at
        # plan construction in every mode, not hang the first parallel run
        self._lookahead  # noqa: B018

    # -- construction helpers ----------------------------------------------

    @classmethod
    def build(
        cls,
        nodes: int,
        partitions: int = 2,
        *,
        latency_us: float = 2.0,
        links: Optional[Any] = None,
        assignment: Optional[Sequence[int]] = None,
    ) -> "PartitionPlan":
        """Plan with block assignment (contiguous node ranges) by default.

        ``links`` is either a full ``nodes × nodes`` latency matrix or a
        sparse ``{(src, dst): latency}`` mapping of per-directed-pair
        overrides on top of the uniform ``latency_us``."""
        if assignment is None:
            if not 1 <= partitions <= max(nodes, 1):
                raise ConfigError(
                    f"partitions must be in 1..nodes ({nodes}), got {partitions}"
                )
            assignment = tuple(i * partitions // nodes for i in range(nodes))
        if isinstance(links, dict):
            matrix = [[float(latency_us)] * nodes for _ in range(nodes)]
            for (src, dst), v in links.items():
                if not (0 <= src < nodes and 0 <= dst < nodes):
                    raise ConfigError(
                        f"link override ({src}, {dst}) outside 0..{nodes - 1}"
                    )
                matrix[src][dst] = float(v)
            links = matrix
        frozen_links = (
            tuple(tuple(float(v) for v in row) for row in links)
            if links is not None
            else None
        )
        return cls(
            nodes=nodes,
            partitions=partitions,
            assignment=tuple(int(a) for a in assignment),
            latency_us=float(latency_us),
            links=frozen_links,
        )

    @classmethod
    def from_timing(
        cls,
        nodes: int,
        partitions: int = 2,
        *,
        timing: Any = None,
        assignment: Optional[Sequence[int]] = None,
    ) -> "PartitionPlan":
        """Plan whose uniform latency is the wire latency of a
        :class:`~repro.config.TimingModel` (default model when ``None``) —
        the same number ``Fabric.transmit`` charges every packet, extracted
        via :func:`repro.network.lookahead.timing_lookahead_us`."""
        from ..config import TimingModel
        from ..network.lookahead import timing_lookahead_us

        return cls.build(
            nodes,
            partitions,
            latency_us=timing_lookahead_us(timing or TimingModel()),
            assignment=assignment,
        )

    # -- queries ------------------------------------------------------------

    def pair_latency_us(self, src: int, dst: int) -> float:
        """Message latency from node ``src`` to node ``dst``."""
        if self.links is not None:
            return self.links[src][dst]
        return self.latency_us

    def part_nodes(self, pid: int) -> tuple[int, ...]:
        """Nodes owned by partition ``pid`` (ascending)."""
        return tuple(i for i, a in enumerate(self.assignment) if a == pid)

    def partition_of(self, node: int) -> int:
        """The partition owning ``node``."""
        return self.assignment[node]

    @cached_property
    def _lookahead(self) -> dict[tuple[int, int], float]:
        """Min latency between every ordered partition pair (validated > 0)."""
        from ..network.lookahead import require_lookahead

        by_part: list[list[int]] = [[] for _ in range(self.partitions)]
        for node, pid in enumerate(self.assignment):
            by_part[pid].append(node)
        table: dict[tuple[int, int], float] = {}
        for sp in range(self.partitions):
            for dp in range(self.partitions):
                if sp == dp:
                    continue
                lo = min(
                    self.pair_latency_us(u, v)
                    for u in by_part[sp]
                    for v in by_part[dp]
                )
                table[(sp, dp)] = require_lookahead(
                    lo, f"partition {sp}->{dp} lookahead"
                )
        return table

    def lookahead_us(self, src_part: int, dst_part: int) -> float:
        """Lookahead of the channel ``src_part -> dst_part``."""
        return self._lookahead[(src_part, dst_part)]


# ---------------------------------------------------------------------------
# program surface


class PartitionProgram:
    """A simulated application running on every node of a plan.

    Subclass and implement :meth:`setup` / :meth:`on_message`; instances
    must be picklable (module-level class, picklable attributes) to run in
    ``process`` mode — the same spawn rule as
    :func:`repro.harness.parallel.run_grid` task functions.
    """

    def setup(self, ctx: "NodeContext") -> None:
        """Called once per node at t=0 to schedule the initial events."""
        raise NotImplementedError

    def on_message(self, ctx: "NodeContext", src: int, payload: Any) -> None:
        """Called when a message from node ``src`` arrives at ``ctx``'s node."""
        raise NotImplementedError


class NodeContext:
    """Per-node API handed to :class:`PartitionProgram` callbacks.

    Everything a node does flows through here so the partition layer can
    stamp the mode-independent ordering keys (see the module docstring):
    local timers via :meth:`schedule`, cross-node traffic via :meth:`send`,
    observable results via :meth:`log`.
    """

    __slots__ = ("index", "state", "rng", "_part", "_log", "_seq")

    def __init__(self, index: int, rng: RngStreams, part: "_Partition") -> None:
        self.index = index
        #: free-form per-node storage for the program
        self.state: dict[str, Any] = {}
        #: node-private seeded substreams (identical in every mode)
        self.rng = rng
        self._part = part
        self._log: list[tuple[Any, ...]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current virtual time in µs."""
        return self._part.sim.now

    @property
    def nodes(self) -> int:
        """Total node count of the plan."""
        return self._part.plan.nodes

    def log(self, *fields: Any) -> None:
        """Append ``(now, *fields)`` to this node's result log — the
        material of the cross-mode trace digest."""
        self._log.append((self._part.sim.now, *fields))

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> None:
        """Run ``fn(*args)`` on this node ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        self._seq += 1
        self._part.sim.schedule(
            delay, fn, *args, priority=(int(priority), 0, self.index, self._seq)
        )

    def send(
        self,
        dst: int,
        payload: Any = None,
        *,
        delay: float = 0.0,
        priority: int = Priority.NORMAL,
    ) -> None:
        """Send ``payload`` to node ``dst``; it arrives after the plan's
        pair latency plus ``delay`` (extra serialization/drain time)."""
        self._part.send(self.index, dst, payload, delay, int(priority))


# ---------------------------------------------------------------------------
# partition core (shared by every mode)


class _BudgetExceeded(Exception):
    """Internal: a partition hit its share of ``max_events``."""


class _Partition:
    """One logical process: a kernel plus the nodes it owns.

    The same object backs all three modes — ``serial`` instantiates one
    with every node and no channels; the parallel modes instantiate one
    per partition and wire :attr:`emit` to the transport (inbox list or
    pipe). All CMB state lives here: inbound guarantees, outbound
    promises, per-channel message counters, and the stats the metrics
    layer exports.
    """

    def __init__(
        self,
        plan: PartitionPlan,
        program: PartitionProgram,
        owned: Sequence[int],
        seed: int,
        queue: Union[str, EventQueue],
        pid: int,
        channels: bool,
    ) -> None:
        self.plan = plan
        self.program = program
        self.pid = pid
        self.owned = tuple(owned)
        self.sim = Simulator(queue=queue)
        root = RngStreams(seed)
        self.ctxs: dict[int, NodeContext] = {
            i: NodeContext(i, root.fork(f"node:{i}"), self) for i in self.owned
        }
        self._is_local = [False] * plan.nodes
        for i in self.owned:
            self._is_local[i] = True
        self._chan_seq: dict[tuple[int, int], int] = {}
        #: transport for cross-partition messages; set by the engine
        self.emit: Callable[[int, tuple[Any, ...]], None] = _no_emit
        peers = [q for q in range(plan.partitions) if q != pid] if channels else []
        #: inbound guarantee per source partition (arrivals are >= this)
        self.guarantee: dict[int, float] = {
            q: plan.lookahead_us(q, pid) for q in peers
        }
        #: highest promise already sent per destination partition
        self.out_promised: dict[int, float] = {
            q: plan.lookahead_us(pid, q) for q in peers
        }
        #: time of the last event actually fired (kept by an observer —
        #: ``sim.now`` lands on synchronization bounds, not event times)
        self.last_fired = 0.0
        if channels:
            self.sim.add_observer(self._record_fired)
        k = plan.partitions
        self.sent_counts = [0] * k
        self.recv_counts = [0] * k
        self.nulls_sent = 0
        self.nulls_received = 0
        self.msgs_sent = 0
        self.msgs_received = 0
        self.lookahead_stalls = 0
        self.horizon_advances = 0

    def _record_fired(self, now: float) -> None:
        self.last_fired = now

    def setup(self) -> None:
        for i in self.owned:
            self.program.setup(self.ctxs[i])

    # -- traffic -------------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, delay: float, priority: int) -> None:
        plan = self.plan
        if not 0 <= dst < plan.nodes:
            raise SimulationError(f"send to unknown node {dst} (plan has {plan.nodes})")
        if delay < 0:
            raise SimulationError(f"send delay must be >= 0, got {delay}")
        key = (src, dst)
        seq = self._chan_seq.get(key, 0) + 1
        self._chan_seq[key] = seq
        t = self.sim.now
        arrive = t + plan.pair_latency_us(src, dst) + delay
        pri = (priority, 1, src, seq)
        if self._is_local[dst]:
            self.sim.schedule_at(arrive, self._deliver, dst, src, payload, priority=pri)
        else:
            q = plan.assignment[dst]
            promise = t + plan.lookahead_us(self.pid, q)
            self.msgs_sent += 1
            self.sent_counts[q] += 1
            self.emit(q, ("m", dst, src, arrive, pri, payload, promise))
            if promise > self.out_promised[q]:
                self.out_promised[q] = promise

    def _deliver(self, dst: int, src: int, payload: Any) -> None:
        self.program.on_message(self.ctxs[dst], src, payload)

    def receive(self, msg: tuple[Any, ...]) -> None:
        """Apply one inter-partition message (real or null)."""
        if msg[0] == "m":
            _, dst, src, arrive, pri, payload, promise = msg
            self.msgs_received += 1
            src_part = self.plan.assignment[src]
            self.recv_counts[src_part] += 1
            if promise > self.guarantee[src_part]:
                self.guarantee[src_part] = promise
                self.horizon_advances += 1
            if arrive < self.sim.now:
                raise SimulationError(
                    f"causality violated: partition {self.pid} at t={self.sim.now} "
                    f"received a message for t={arrive} (lookahead misdeclared?)"
                )
            self.sim.schedule_at(arrive, self._deliver, dst, src, payload, priority=pri)
        else:  # ("n", src_part, promise)
            _, src_part, promise = msg
            self.nulls_received += 1
            if promise > self.guarantee[src_part]:
                self.guarantee[src_part] = promise
                self.horizon_advances += 1

    # -- CMB machinery -------------------------------------------------------

    def horizon(self) -> float:
        """Min inbound guarantee — nothing can arrive before this."""
        g = self.guarantee
        return min(g.values()) if g else _INF

    def lower_bound(self) -> float:
        """Earliest time this partition could still send anything."""
        t = self.sim.peek_time()
        h = self.horizon()
        return h if t is None else min(t, h)

    def flush_nulls(self, until: Optional[float] = None) -> bool:
        """Promise ``lower_bound + lookahead`` to every neighbour whose
        recorded promise it beats. In bounded runs promises stop growing
        once past ``until`` — neighbours only need ``> until`` to finish,
        and the cap stops idle partitions flooding each other."""
        if not self.out_promised:
            return False
        lb = self.lower_bound()
        advanced = False
        for q, promised in self.out_promised.items():
            if until is not None and promised > until:
                continue
            promise = lb + self.plan.lookahead_us(self.pid, q)
            if promise > promised:
                self.out_promised[q] = promise
                self.nulls_sent += 1
                self.emit(q, ("n", self.pid, promise))
                advanced = True
        return advanced

    def advance(self, until: Optional[float], budget: Optional[int]) -> int:
        """Fire every safe event: strictly below the horizon, bounded by
        ``until``. Returns the number fired; raises :class:`_BudgetExceeded`
        when the kernel's ``max_events`` guard trips on ``budget``."""
        sim = self.sim
        h = self.horizon()
        if h is _INF or h == _INF:
            bound = until
        else:
            # strictly below the horizon: an arrival at exactly h may sort
            # before anything local scheduled there
            strict = math.nextafter(h, _NEG_INF)
            bound = strict if until is None else min(strict, until)
        before = sim.events_fired
        try:
            sim.run(until=bound, max_events=budget)
        except SimulationError as exc:
            if "max_events" in str(exc):
                raise _BudgetExceeded from None
            raise
        fired = sim.events_fired - before
        if fired == 0 and self.guarantee:
            t = sim.peek_time()
            if t is not None and t >= h and (until is None or t <= until):
                self.lookahead_stalls += 1
        return fired

    def done(self, until: Optional[float]) -> bool:
        """No fireable work left in this phase (transport state excluded)."""
        t = self.sim.peek_time()
        if until is None:
            return t is None
        return t is None or t > until

    def stats(self) -> dict[str, Any]:
        return {
            "partition": self.pid,
            "nodes": len(self.owned),
            "events_fired": self.sim.events_fired,
            "msgs_sent": self.msgs_sent,
            "msgs_received": self.msgs_received,
            "null_msgs_sent": self.nulls_sent,
            "null_msgs_received": self.nulls_received,
            "lookahead_stalls": self.lookahead_stalls,
            "horizon_advances": self.horizon_advances,
            "last_event_us": self.last_fired,
        }

    def node_logs(self) -> dict[int, list[tuple[Any, ...]]]:
        return {i: list(ctx._log) for i, ctx in self.ctxs.items()}


def _no_emit(dst_part: int, msg: tuple[Any, ...]) -> None:  # pragma: no cover
    raise SimulationError("partition transport not wired (engine bug)")


# ---------------------------------------------------------------------------
# process-mode worker (module-level: pickled by reference under spawn)


def _partition_worker(
    pid: int,
    plan: PartitionPlan,
    program: PartitionProgram,
    seed: int,
    queue: str,
    in_conns: dict[int, Any],
    out_conns: dict[int, Any],
    ctrl: Any,
) -> None:
    """Worker REPL: owns one partition kernel, obeys run/collect/close."""
    part = _Partition(plan, program, plan.part_nodes(pid), seed, queue, pid, True)
    part.emit = lambda q, msg: out_conns[q].send(msg)
    part.setup()
    try:
        while True:
            cmd = ctrl.recv()
            op = cmd[0]
            if op == "run":
                _worker_run(part, in_conns, ctrl, cmd[1], cmd[2])
            elif op == "collect":
                ctrl.send(
                    (
                        "logs",
                        pid,
                        part.node_logs(),
                        part.stats(),
                        part.sim.events_fired,
                        part.last_fired,
                    )
                )
            elif op == "close":
                return
    except (EOFError, KeyboardInterrupt):  # parent went away
        return


def _worker_run(
    part: _Partition,
    in_conns: dict[int, Any],
    ctrl: Any,
    until: Optional[float],
    budget: Optional[int],
) -> None:
    """One run phase: advance/flush/report until the coordinator ends it."""
    from multiprocessing.connection import wait

    pid = part.pid
    remaining = budget
    fired_at_start = part.sim.events_fired
    wait_list = list(in_conns.values()) + [ctrl]
    reported: Optional[tuple[Any, ...]] = None
    announced_done = False
    exhausted = False
    while True:
        for conn in in_conns.values():
            while conn.poll():
                part.receive(conn.recv())
        while ctrl.poll():
            m = ctrl.recv()
            if m[0] == "phase_end":
                ctrl.send(
                    (
                        "phase_ack",
                        pid,
                        part.sim.events_fired - fired_at_start,
                        part.last_fired,
                    )
                )
                return
            if m[0] == "probe":
                ctrl.send(
                    (
                        "probe_ack",
                        pid,
                        m[1],
                        part.done(until),
                        tuple(part.sent_counts),
                        tuple(part.recv_counts),
                    )
                )
        fired = 0
        if not exhausted:
            try:
                fired = part.advance(until, remaining)
            except _BudgetExceeded:
                exhausted = True
                part.flush_nulls(until)
                ctrl.send(("exhausted", pid))
            else:
                if remaining is not None:
                    remaining -= fired
                part.flush_nulls(until)
        if until is not None and not announced_done:
            # permanent in bounded runs: horizon beyond the bound means no
            # arrival <= until can ever materialize
            if part.done(until) and part.horizon() > until:
                announced_done = True
                ctrl.send(("done", pid))
        elif until is None:
            snap = (part.done(None), tuple(part.sent_counts), tuple(part.recv_counts))
            if snap[0] and snap != reported:
                reported = snap
                ctrl.send(("idle", pid, snap[1], snap[2]))
        if fired == 0:
            # blocked (on the horizon, the bound, or the budget): sleep
            # until a null, a message, or the coordinator wakes us
            wait(wait_list)


# ---------------------------------------------------------------------------
# facade


class PartitionedSimulation:
    """Run a :class:`PartitionProgram` over a :class:`PartitionPlan`.

    ``mode`` is one of :data:`PARTITION_MODES` (``"auto"`` picks ``serial``
    for one partition, ``process`` otherwise). The surface mirrors the
    kernel: :meth:`run` (``until``/``max_events``), :meth:`stop`,
    :attr:`now`, :attr:`events_fired` — plus :meth:`node_logs`,
    :meth:`trace_digest` (the cross-mode equivalence fingerprint),
    :meth:`partition_stats`, and :meth:`attach_metrics` for the
    observability registry. Process mode holds worker processes between
    :meth:`run` calls; use :meth:`close` (or a ``with`` block) to tear
    them down.
    """

    def __init__(
        self,
        program: PartitionProgram,
        plan: PartitionPlan,
        *,
        seed: int = 0,
        queue: str = "calendar",
        mode: str = "auto",
    ) -> None:
        if mode == "auto":
            mode = "serial" if plan.partitions == 1 else "process"
        if mode not in PARTITION_MODES:
            raise ConfigError(
                f"unknown partition mode {mode!r}; expected one of "
                f"{PARTITION_MODES} or 'auto'"
            )
        self.plan = plan
        self.program = program
        self.seed = int(seed)
        self.queue_kind = queue
        self.mode = mode
        self._now = 0.0
        self._fired = 0
        self._stop_pending = False
        self._closed = False
        self._parts: list[_Partition] = []
        self._inboxes: list[list[tuple[Any, ...]]] = []
        # process-mode plumbing
        self._procs: list[Any] = []
        self._ctrls: list[Any] = []
        self._cache: Optional[list[tuple[dict, dict, int, float]]] = None
        if mode == "serial":
            part = _Partition(
                plan, program, range(plan.nodes), self.seed, queue, 0, False
            )
            part.setup()
            self._parts = [part]
        elif mode == "inproc":
            k = plan.partitions
            self._inboxes = [[] for _ in range(k)]
            boxes = self._inboxes
            for pid in range(k):
                part = _Partition(
                    plan, program, plan.part_nodes(pid), self.seed, queue, pid, True
                )
                part.emit = lambda q, msg, _b=boxes: _b[q].append(msg)
                part.setup()
                self._parts.append(part)
        # process mode spawns lazily on the first run()

    # -- kernel-mirror surface ----------------------------------------------

    @property
    def now(self) -> float:
        """Virtual time reached by the last :meth:`run` (µs)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events fired across every partition."""
        if self.mode == "process":
            return self._fired
        return sum(p.sim.events_fired for p in self._parts)

    def stop(self) -> None:
        """Make the next :meth:`run` fire zero events (then consumed) —
        the pre-run ``stop`` semantics of the serial kernel."""
        self._stop_pending = True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Run to completion, to ``until``, or until ``max_events`` trips."""
        if self._closed:
            raise SimulationError("PartitionedSimulation is closed")
        if self._stop_pending:
            self._stop_pending = False
            return self._now
        self._cache = None
        if self.mode == "serial":
            end = self._parts[0].sim.run(until=until, max_events=max_events)
            self._now = end
            return end
        if self.mode == "inproc":
            return self._run_inproc(until, max_events)
        return self._run_process(until, max_events)

    def _runaway(self, max_events: int) -> SimulationError:
        return SimulationError(
            f"exceeded max_events={max_events} at t={self._now:.3f}µs "
            "(runaway simulation?)"
        )

    # -- inproc engine -------------------------------------------------------

    def _run_inproc(self, until: Optional[float], max_events: Optional[int]) -> float:
        parts = self._parts
        boxes = self._inboxes
        remaining = max_events
        while True:
            for pid, part in enumerate(parts):
                box = boxes[pid]
                if box:
                    for msg in box:
                        part.receive(msg)
                    box.clear()
            if all(p.done(until) for p in parts) and not any(boxes):
                break
            progressed = False
            for pid, part in enumerate(parts):
                box = boxes[pid]
                if box:
                    for msg in box:
                        part.receive(msg)
                    box.clear()
                try:
                    fired = part.advance(until, remaining)
                except _BudgetExceeded:
                    assert max_events is not None
                    self._now = max(self._now, max(p.last_fired for p in parts))
                    raise self._runaway(max_events) from None
                if remaining is not None:
                    remaining -= fired
                if part.flush_nulls(until) or fired:
                    progressed = True
            if not progressed:
                if all(p.done(until) for p in parts) and not any(boxes):
                    break
                raise SimulationError(
                    "partitions stalled without progress — lookahead too "
                    "small to advance any horizon (plan bug?)"
                )
        if until is not None:
            self._now = max(self._now, until)
        else:
            self._now = max(self._now, max(p.last_fired for p in parts))
        return self._now

    # -- process engine ------------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._procs:
            return
        import multiprocessing as mp

        try:
            pickle.dumps(self.program)
        except Exception as exc:
            raise SimulationError(
                f"program {type(self.program).__name__} is not spawn-safe: "
                "process-mode workers receive it by pickle, so it must be an "
                "instance of a module-level class with picklable attributes "
                "(or run with mode='inproc')"
            ) from exc
        ctx = mp.get_context("spawn")
        k = self.plan.partitions
        # one unidirectional pipe per ordered partition pair, plus one
        # duplex control pipe per worker
        recv_of: list[dict[int, Any]] = [{} for _ in range(k)]
        send_of: list[dict[int, Any]] = [{} for _ in range(k)]
        for src in range(k):
            for dst in range(k):
                if src == dst:
                    continue
                r, w = ctx.Pipe(duplex=False)
                recv_of[dst][src] = r
                send_of[src][dst] = w
        for pid in range(k):
            parent_ctrl, child_ctrl = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_partition_worker,
                args=(
                    pid,
                    self.plan,
                    self.program,
                    self.seed,
                    self.queue_kind,
                    recv_of[pid],
                    send_of[pid],
                    child_ctrl,
                ),
                daemon=True,
            )
            proc.start()
            child_ctrl.close()
            for conn in recv_of[pid].values():
                conn.close()
            for conn in send_of[pid].values():
                conn.close()
            self._procs.append(proc)
            self._ctrls.append(parent_ctrl)

    def _recv_ctrl(self, conn: Any) -> tuple[Any, ...]:
        try:
            return conn.recv()
        except (EOFError, ConnectionResetError):
            raise SimulationError(
                "a partition worker died mid-run (see stderr for its traceback)"
            ) from None

    def _run_process(self, until: Optional[float], max_events: Optional[int]) -> float:
        from multiprocessing.connection import wait

        self._ensure_workers()
        k = self.plan.partitions
        for ctrl in self._ctrls:
            ctrl.send(("run", until, max_events))
        done: set[int] = set()
        idle: dict[int, tuple[Any, ...]] = {}
        exhausted = False
        probe_id = 0
        pending_probe: Optional[tuple[int, dict[int, tuple[Any, ...]]]] = None
        probe_acks: dict[int, tuple[Any, ...]] = {}
        while True:
            if until is not None and len(done) == k:
                break
            if exhausted:
                break
            ready = wait(self._ctrls, timeout=_WORKER_WAIT_S)
            if not ready:
                raise SimulationError(
                    f"partition workers made no progress for {_WORKER_WAIT_S}s "
                    "(wedged run?)"
                )
            for conn in ready:
                while conn.poll():
                    m = self._recv_ctrl(conn)
                    op = m[0]
                    if op == "done":
                        done.add(m[1])
                    elif op == "idle":
                        idle[m[1]] = (m[2], m[3])
                        pending_probe = None  # state moved; restart detection
                    elif op == "exhausted":
                        exhausted = True
                    elif op == "probe_ack":
                        _, pid, ack_id, is_idle, sent, recv = m
                        if pending_probe is not None and ack_id == pending_probe[0]:
                            probe_acks[pid] = (is_idle, sent, recv)
            if until is None and not exhausted:
                if pending_probe is not None:
                    if len(probe_acks) == k:
                        snap = pending_probe[1]
                        stable = all(
                            probe_acks[p][0]
                            and (probe_acks[p][1], probe_acks[p][2]) == snap[p]
                            for p in range(k)
                        )
                        pending_probe = None
                        if stable:
                            break
                elif len(idle) == k and self._counts_balanced(idle, k):
                    probe_id += 1
                    pending_probe = (probe_id, dict(idle))
                    probe_acks = {}
                    for ctrl in self._ctrls:
                        ctrl.send(("probe", probe_id))
        # end the phase and collect exact per-worker totals
        for ctrl in self._ctrls:
            ctrl.send(("phase_end",))
        fired_total = 0
        last_fired = 0.0
        for ctrl in self._ctrls:
            while True:
                m = self._recv_ctrl(ctrl)
                if m[0] == "phase_ack":
                    fired_total += m[2]
                    last_fired = max(last_fired, m[3])
                    break
        self._fired += fired_total
        if until is not None:
            self._now = max(self._now, until)
        else:
            self._now = max(self._now, last_fired)
        if max_events is not None and (exhausted or fired_total > max_events):
            raise self._runaway(max_events)
        return self._now

    @staticmethod
    def _counts_balanced(idle: dict[int, tuple[Any, ...]], k: int) -> bool:
        """Every channel's sent total equals its receiver's recv total."""
        return all(
            idle[p][0][q] == idle[q][1][p]
            for p in range(k)
            for q in range(k)
            if p != q
        )

    # -- results -------------------------------------------------------------

    def _collect(self) -> list[tuple[dict, dict, int, float]]:
        """Per-partition ``(logs, stats, events_fired, last_fired)``."""
        if self.mode != "process":
            return [
                (p.node_logs(), p.stats(), p.sim.events_fired, p.last_fired)
                for p in self._parts
            ]
        if self._cache is not None:
            return self._cache
        if self._closed:
            raise SimulationError(
                "PartitionedSimulation was closed before results were collected"
            )
        if not self._procs:
            self._ensure_workers()  # setup() ran; pre-run logs may matter
        for ctrl in self._ctrls:
            ctrl.send(("collect",))
        rows: list[Optional[tuple[dict, dict, int, float]]] = [None] * len(
            self._ctrls
        )
        for ctrl in self._ctrls:
            while True:
                m = self._recv_ctrl(ctrl)
                if m[0] == "logs":
                    rows[m[1]] = (m[2], m[3], m[4], m[5])
                    break
        self._cache = [row for row in rows if row is not None]
        self._fired = sum(row[2] for row in self._cache)
        return self._cache

    def node_logs(self) -> list[list[tuple[Any, ...]]]:
        """Every node's log, indexed by node — identical in every mode."""
        merged: list[list[tuple[Any, ...]]] = [[] for _ in range(self.plan.nodes)]
        for logs, _stats, _fired, _last in self._collect():
            for node, entries in logs.items():
                merged[node] = list(entries)
        return merged

    def trace_digest(self) -> str:
        """BLAKE2 fingerprint of every node log — the byte-identity check
        between serial and partitioned executions."""
        import hashlib

        payload = repr(tuple(tuple(log) for log in self.node_logs()))
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    def partition_stats(self) -> list[dict[str, Any]]:
        """CMB counters per partition (null messages, stalls, horizons)."""
        return [dict(stats) for _logs, stats, _fired, _last in self._collect()]

    def stats(self) -> dict[str, Any]:
        """Aggregate run statistics across partitions."""
        per = self.partition_stats()
        out: dict[str, Any] = {
            "mode": self.mode,
            "partitions": self.plan.partitions,
            "nodes": self.plan.nodes,
            "time_us": self._now,
            "events_fired": self.events_fired,
        }
        for key in (
            "msgs_sent",
            "msgs_received",
            "null_msgs_sent",
            "null_msgs_received",
            "lookahead_stalls",
            "horizon_advances",
        ):
            out[key] = sum(p[key] for p in per)
        return out

    def attach_metrics(self, registry: Any) -> None:
        """Register per-partition collectors (``pdes.p{i}``) plus an
        aggregate (``pdes``) on a :class:`repro.obs.MetricsRegistry`."""
        registry.register_collector(
            "pdes",
            lambda: {
                k: v
                for k, v in self.stats().items()
                if k not in ("mode",)
            },
        )
        for pid in range(self.plan.partitions if self.mode != "serial" else 1):
            registry.register_collector(
                f"pdes.p{pid}", lambda p=pid: self.partition_stats()[p]
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Tear down process-mode workers (idempotent; other modes no-op)."""
        if self._closed:
            return
        if self.mode == "process" and self._procs and self._cache is None:
            try:
                self._collect()  # preserve logs/stats for post-close reads
            except (SimulationError, OSError):
                pass
        self._closed = True
        if self.mode != "process" or not self._procs:
            return
        for ctrl in self._ctrls:
            try:
                ctrl.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for ctrl in self._ctrls:
            ctrl.close()
        self._procs.clear()
        self._ctrls.clear()

    def __enter__(self) -> "PartitionedSimulation":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
