"""Event-queue entries for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``. The sequence number
makes ordering total and therefore the whole simulation deterministic:
two events scheduled for the same instant at the same priority fire in
scheduling order (FIFO).
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Priority", "EventHandle"]


class Priority:
    """Priority levels for same-instant event ordering (lower fires first).

    ``INTERRUPT`` models hardware events (wire arrivals, timer expiry) that
    logically precede software reactions scheduled for the same instant.
    ``TASKLET`` mirrors Marcel's "very high priority" deferred work.
    """

    INTERRUPT = 0
    TASKLET = 1
    NORMAL = 2
    LOW = 3
    IDLE = 4


class EventHandle:
    """A scheduled callback; supports cancellation.

    Cancellation is lazy: the entry stays in the heap but is skipped when it
    surfaces. ``fired`` is True once the callback ran.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "_key",
        "_fn",
        "_args",
        "cancelled",
        "fired",
        "label",
        "_queue",
        "_bidx",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        # The ordering key is precomputed once: ``__lt__`` runs O(log n)
        # times per heap operation and allocating a fresh tuple on every
        # comparison dominated the kernel profile. The (time, priority,
        # seq) fields never change after construction, so the cache is
        # always coherent.
        self._key = (time, priority, seq)
        self._fn = fn
        self._args = args
        self.cancelled = False
        self.fired = False
        self.label = label
        #: the EventQueue currently storing this handle (set by push);
        #: lets cancel() report lazily-cancelled entries so the queue can
        #: compact when they pile up.
        self._queue: Any = None
        #: absolute calendar-bucket index (int(time / width)); only
        #: meaningful while stored in a CalendarQueue.
        self._bidx = 0

    def cancel(self) -> None:
        """Prevent the callback from running; no-op if already fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled/fired."""
        return not self.cancelled and not self.fired

    def _fire(self) -> None:
        self.fired = True
        self._fn(*self._args)
        # Release references so long simulations do not retain closures.
        self._fn = _noop
        self._args = ()

    def sort_key(self) -> tuple[float, int, int]:
        return self._key

    def __lt__(self, other: "EventHandle") -> bool:
        return self._key < other._key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        lbl = f" {self.label}" if self.label else ""
        return f"<EventHandle t={self.time:.3f} p={self.priority}{lbl} {state}>"


def _noop(*_args: Any) -> None:  # pragma: no cover - placeholder
    return None
