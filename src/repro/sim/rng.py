"""Seeded, named random substreams.

Determinism is a core property of the reproduction (see DESIGN.md §5): any
stochastic choice — workload jitter, strategy tie-breaking — must draw from
a named substream derived from the run's root seed, never from a global RNG.
Two runs with identical configuration then produce identical event
timelines, which the property tests assert.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent :class:`numpy.random.Generator` substreams.

    Each distinct ``name`` yields an independent, reproducible generator:
    the substream seed is derived from ``(root_seed, name)`` with BLAKE2, so
    adding a new consumer never perturbs existing streams.
    """

    def __init__(self, root_seed: int = 0) -> None:
        if root_seed < 0:
            raise ValueError(f"root seed must be >= 0, got {root_seed}")
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def derive_seed(self, name: str) -> int:
        """Stable 64-bit seed for substream ``name``."""
        h = hashlib.blake2b(digest_size=8)
        h.update(self.root_seed.to_bytes(16, "little", signed=False))
        h.update(name.encode("utf-8"))
        return int.from_bytes(h.digest(), "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the substream called ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self.derive_seed(name))
            self._streams[name] = gen
        return gen

    def fork(self, salt: str) -> "RngStreams":
        """A new family whose root is derived from this one plus ``salt``.

        Used to give each simulated node an independent but reproducible
        stream family.
        """
        return RngStreams(self.derive_seed(f"fork:{salt}") % (2**63))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RngStreams root={self.root_seed} streams={sorted(self._streams)}>"
