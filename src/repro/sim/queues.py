"""Pluggable event queues for the discrete-event kernel.

Two implementations share one contract — events surface in strict
``(time, priority, seq)`` order, identical between implementations, so a
run produces byte-identical per-seed traces whichever queue it selects
(``tests/property/test_prop_queues.py`` pins this with random schedules):

* :class:`HeapQueue` — the classic binary heap (:mod:`heapq`). O(log n)
  push/pop. The conservative fallback, and the reference ordering.
* :class:`CalendarQueue` — a calendar queue keyed on the microsecond
  virtual clock: O(1) amortized push/pop with lazy bucket resizing,
  batch extraction of whole bucket-visits (sorted once, fired without
  re-entering the bucket search), and cancelled-entry compaction so
  abandoned timers (e.g. retransmit timers cancelled by ACKs) cannot
  bloat the queue without bound.

Both queues compact lazily-cancelled entries once they outnumber live
ones (with a small floor so tiny queues never bother), which fixes the
historical heap behaviour of carrying every cancelled timer until its
timestamp surfaced.

The kernel's hot loops (:meth:`repro.sim.kernel.Simulator.run`) reach
into the concrete queues' internals (``_heap``, ``_batch``/``_batch_i``,
``_count``/``_cancelled``) to avoid per-event method calls; that
contract is private to ``repro.sim`` and documented on each class.
Third-party :class:`EventQueue` subclasses only need the public methods
— the kernel falls back to a ``peek``/``pop`` loop for them.

Bucket mapping
--------------
The calendar queue maps an event to the absolute bucket index
``int(time * (1 / width))`` (stored on the handle as ``_bidx``) and to
the physical bucket ``_bidx & (nbuckets - 1)``. Membership in the
current bucket-visit is decided by integer equality on ``_bidx`` — never
by comparing times against a computed bucket boundary — so floating
point rounding at bucket edges cannot misfile an event: ``int(t * inv)``
is monotone in ``t``, which is all the ordering proof needs.
"""

from __future__ import annotations

import heapq
from bisect import insort
from operator import attrgetter
from typing import TYPE_CHECKING, Iterator, Union

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import EventHandle

__all__ = ["EventQueue", "HeapQueue", "CalendarQueue", "QUEUE_KINDS", "make_queue"]

_SORT_KEY = attrgetter("_key")

#: compaction is considered only once this many cancelled entries linger.
#: Below the floor, lazy deletion is the right tool — near-term cancelled
#: timers (retransmits killed by their ACK a few µs later) surface and
#: drop on their own, and rebuilding for them is pure thrash. Above it,
#: a rebuild removes at least half the stored entries (the trigger needs
#: cancelled > live), so the cost is O(1) amortized per cancellation and
#: the queue can never bloat past ``2 × max(live, _COMPACT_MIN)``.
_COMPACT_MIN = 1024

_MIN_BUCKETS = 32
_MAX_BUCKETS = 1 << 17


class EventQueue:
    """Contract shared by kernel event queues.

    Implementations must dequeue pending handles in strict
    ``(time, priority, seq)`` order and silently drop cancelled entries
    as they surface. ``len(q)`` counts *stored* entries — including
    lazily-cancelled ones — which is what the bloat regression guards
    watch.
    """

    kind = "abstract"

    def push(self, handle: "EventHandle") -> None:
        raise NotImplementedError

    def pop_next(self) -> "EventHandle | None":
        """Remove and return the next pending handle (None when drained)."""
        raise NotImplementedError

    def peek_time(self) -> float | None:
        """Time of the next pending handle, or None when drained."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator["EventHandle"]:
        raise NotImplementedError

    def _note_cancel(self) -> None:
        """Called by :meth:`EventHandle.cancel` on a stored handle."""
        raise NotImplementedError

    def stats(self) -> dict[str, object]:
        raise NotImplementedError

    def pending_count(self) -> int:
        """Number of stored, non-cancelled entries (O(n); for tests)."""
        return sum(1 for h in self if h.pending)


class HeapQueue(EventQueue):
    """Binary-heap queue — the original kernel data structure.

    Kernel-private contract: ``_heap`` is the heap list (compaction
    mutates it *in place* so the run loop's local alias stays valid) and
    ``_cancelled`` counts cancelled entries still inside it; the run
    loop decrements it when sweeping cancelled heads.
    """

    kind = "heap"

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._cancelled = 0
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator["EventHandle"]:
        return iter(self._heap)

    def push(self, handle: "EventHandle") -> None:
        handle._queue = self
        heapq.heappush(self._heap, handle)

    def pop_next(self) -> "EventHandle | None":
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle.cancelled:
                self._cancelled -= 1
                continue
            return handle
        return None

    def peek_time(self) -> float | None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0].time if heap else None

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled >= _COMPACT_MIN and (self._cancelled << 1) > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        heap = self._heap
        heap[:] = [h for h in heap if not h.cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self.compactions += 1

    def stats(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "entries": len(self._heap),
            "cancelled": self._cancelled,
            "compactions": self.compactions,
        }


class CalendarQueue(EventQueue):
    """Calendar queue: O(1) amortized scheduling on the virtual clock.

    Structure: ``nbuckets`` (a power of two) unsorted buckets, each an
    append-only list. ``_cur`` is the absolute index of the bucket-visit
    the cursor is parked on; all entries stored in buckets satisfy
    ``h._bidx >= _cur`` (a push behind the cursor rewinds it). Dequeue
    extracts every entry of the current visit in one pass (*batch*),
    sorts the batch once by the full ordering key, and serves from it —
    so per-event dequeue cost is an index bump, not a search.

    Events scheduled *during* batch consumption that belong before the
    end of the active batch (``call_soon``, zero-delay reactions) are
    insorted into the unconsumed tail, which preserves exact heap
    ordering: an event can never be scheduled before ``now``, so the
    consumed prefix is never affected.

    Lazy resizing: on refill, if stored entries exceed ``2 × nbuckets``
    the table grows (or shrinks at ``< nbuckets/8``), rebuilt with a
    bucket width of three times the mean gap of a sample of stored
    events — the classic calendar-queue heuristic keeping a visit at
    O(1) expected entries. Rebuilds drop cancelled entries for free.

    Kernel-private contract: the run loop consumes ``_batch[_batch_i]``
    directly (writing ``None`` over consumed slots), decrements
    ``_cancelled`` per dropped cancelled entry, and calls ``_refill()``
    when the batch is spent; consumption is accounted lazily (``_refill``
    subtracts the whole previous batch from ``_count`` in one step).
    """

    kind = "calendar"

    def __init__(self, width: float = 1.0, nbuckets: int = _MIN_BUCKETS) -> None:
        if width <= 0.0:
            raise SimulationError(f"bucket width must be > 0, got {width}")
        n = _MIN_BUCKETS
        while n < nbuckets:
            n <<= 1
        self._width = width
        self._inv_width = 1.0 / width
        self._nbuckets = n
        self._mask = n - 1
        self._buckets: list[list[EventHandle]] = [[] for _ in range(n)]
        #: absolute bucket-visit index the cursor is parked on
        self._cur = 0
        #: entries pushed and not yet accounted consumed. Consumption of
        #: the active batch is accounted lazily — ``_refill`` subtracts
        #: the whole previous batch at once — so the exact stored count
        #: is ``_count - _batch_i`` (positions below ``_batch_i`` are
        #: consumed slots of the active batch).
        self._count = 0
        #: entries stored in buckets only (batch excluded)
        self._bucket_count = 0
        #: cancelled entries still stored
        self._cancelled = 0
        self._batch: list[EventHandle] = []
        self._batch_i = 0
        self.batches = 0
        self.compactions = 0
        self.resizes = 0

    def __len__(self) -> int:
        return self._count - self._batch_i

    def __iter__(self) -> Iterator["EventHandle"]:
        batch = self._batch
        for i in range(self._batch_i, len(batch)):
            handle = batch[i]
            if handle is not None:
                yield handle
        for bucket in self._buckets:
            yield from bucket

    def push(self, handle: "EventHandle") -> None:
        handle._queue = self
        bidx = int(handle.time * self._inv_width)
        handle._bidx = bidx
        self._count += 1
        if bidx > self._cur:
            self._buckets[bidx & self._mask].append(handle)
            self._bucket_count += 1
        else:
            self._push_near(handle, bidx)

    def _push_near(self, handle: "EventHandle", bidx: int) -> None:
        """Store a handle with ``bidx <= _cur`` (the uncommon direction;
        ``Simulator.schedule_at`` inlines the common one)."""
        batch = self._batch
        i = self._batch_i
        if i < len(batch):
            # belongs before the end of the active batch: interleave.
            # The event's time is >= now, so its slot is >= i and the
            # already-consumed prefix is untouched. ``key=`` keeps the
            # probe comparisons on C tuples instead of EventHandle.__lt__.
            insort(batch, handle, lo=i, key=_SORT_KEY)
            return
        if bidx < self._cur:
            # scheduled behind a cursor that had skipped ahead of a
            # sparse region — park the cursor back on it
            self._cur = bidx
        self._buckets[bidx & self._mask].append(handle)
        self._bucket_count += 1

    def pop_next(self) -> "EventHandle | None":
        while True:
            i = self._batch_i
            batch = self._batch
            if i < len(batch):
                handle = batch[i]
                batch[i] = None
                self._batch_i = i + 1
                if handle.cancelled:
                    self._cancelled -= 1
                    continue
                return handle
            if not self._refill():
                return None

    def peek_time(self) -> float | None:
        while True:
            i = self._batch_i
            batch = self._batch
            if i < len(batch):
                handle = batch[i]
                if handle.cancelled:
                    batch[i] = None
                    self._batch_i = i + 1
                    self._cancelled -= 1
                    continue
                return handle.time
            if not self._refill():
                return None

    def _refill(self) -> bool:
        """Extract the next bucket-visit into ``_batch``; False if drained."""
        # account the consumed batch in one step (see _count docstring)
        self._count -= len(self._batch)
        self._batch = []
        self._batch_i = 0
        # resize on the *live* population: lazily-cancelled entries must
        # not drive growth, or the cancel-accumulate/resize-drop cycle
        # thrashes the table (grow on stale bulk, shrink after the
        # rebuild discards it, repeat)
        count = self._bucket_count - self._cancelled
        n = self._nbuckets
        if (count > (n << 1) and n < _MAX_BUCKETS) or (
            (count << 3) < n and n > _MIN_BUCKETS
        ):
            self._resize()
        if self._bucket_count == 0:
            return False
        buckets = self._buckets
        mask = self._mask
        n = self._nbuckets
        cur = self._cur
        scanned = 0
        while True:
            bucket = buckets[cur & mask]
            if bucket:
                batch = [h for h in bucket if h._bidx == cur]
                if batch:
                    if len(batch) == len(bucket):
                        # in place: pushes may alias via self._buckets
                        bucket.clear()
                    else:
                        bucket[:] = [h for h in bucket if h._bidx != cur]
                    if len(batch) > 1:
                        batch.sort(key=_SORT_KEY)
                    self._cur = cur
                    self._batch = batch
                    self._batch_i = 0
                    self._bucket_count -= len(batch)
                    self.batches += 1
                    return True
            cur += 1
            scanned += 1
            if scanned > n:
                # a whole cycle of empty visits: the region is sparse —
                # jump straight to the earliest stored bucket-visit
                cur = min(h._bidx for b in buckets for h in b)
                scanned = 0

    def _resize(self) -> None:
        entries = [h for b in self._buckets for h in b if not h.cancelled]
        removed = self._bucket_count - len(entries)
        if removed:
            self._bucket_count -= removed
            self._count -= removed
            self._cancelled -= removed
        live = len(entries)
        target = _MIN_BUCKETS
        while target < live and target < _MAX_BUCKETS:
            target <<= 1
        width = self._choose_width(entries)
        self._nbuckets = target
        self._mask = mask = target - 1
        self._width = width
        self._inv_width = inv = 1.0 / width
        self._buckets = buckets = [[] for _ in range(target)]
        min_bidx: int | None = None
        for handle in entries:
            bidx = int(handle.time * inv)
            handle._bidx = bidx
            buckets[bidx & mask].append(handle)
            if min_bidx is None or bidx < min_bidx:
                min_bidx = bidx
        if min_bidx is not None:
            self._cur = min_bidx
        self.resizes += 1

    #: target number of entries per bucket-visit. Batches amortize the
    #: fixed refill cost (bucket scan, partition, sort call), so the
    #: sweet spot is well above the classic calendar queue's ~1 — and
    #: events that land inside the active visit are absorbed by a C
    #: bisect-insort, which is cheaper than a refill.
    _TARGET_BATCH = 16

    def _choose_width(self, entries: list["EventHandle"]) -> float:
        """Width such that one visit holds ``_TARGET_BATCH`` entries on
        average: ``target × span / population``, with the span taken from
        a bounded sample. Density-based rather than the classic
        mean-gap rule because engine schedules are bimodal — dense
        near-term work (wire deliveries, ticks) plus sparse far-future
        retransmit timers — and a mean-gap width gets dragged toward the
        sparse tail, collapsing all dense work into one giant batch."""
        if len(entries) < 2:
            return self._width
        if len(entries) > 64:
            sample = entries[:: len(entries) // 64][:64]
        else:
            sample = entries
        times = [h.time for h in sample]
        span = max(times) - min(times)
        if span <= 0.0:
            return self._width
        width = self._TARGET_BATCH * span / len(entries)
        return width if width > 1e-9 else 1e-9

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled >= _COMPACT_MIN and (self._cancelled << 1) > self._count:
            self._compact()

    def _compact(self) -> None:
        # The active batch tail is left alone (it is O(bucket-visit) small
        # and its consumed-slot protocol belongs to the run loop); buckets
        # are filtered in place.
        removed = 0
        for bucket in self._buckets:
            if bucket:
                live = [h for h in bucket if not h.cancelled]
                if len(live) != len(bucket):
                    removed += len(bucket) - len(live)
                    bucket[:] = live
        if removed:
            self._bucket_count -= removed
            self._count -= removed
            self._cancelled -= removed
        self.compactions += 1

    def stats(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "entries": self._count - self._batch_i,
            "cancelled": self._cancelled,
            "buckets": self._nbuckets,
            "width_us": self._width,
            "batches": self.batches,
            "compactions": self.compactions,
            "resizes": self.resizes,
        }


QUEUE_KINDS = ("heap", "calendar")

_REGISTRY = {"heap": HeapQueue, "calendar": CalendarQueue}


def make_queue(spec: Union[str, EventQueue]) -> EventQueue:
    """Build an event queue from a kind name, or pass an instance through."""
    if isinstance(spec, EventQueue):
        return spec
    factory = _REGISTRY.get(spec)  # type: ignore[arg-type]
    if factory is None:
        raise SimulationError(
            f"unknown event queue {spec!r}: expected one of {QUEUE_KINDS} "
            "or an EventQueue instance"
        )
    return factory()
