"""Structured tracing and per-core timeline statistics.

The tracer records ``(time, category, where, label, data)`` tuples. It is
used for three purposes:

* debugging simulations (human-readable dump);
* computing per-core busy/idle intervals and utilization — the quantity the
  paper's offloading argument is about;
* regression tests: determinism is asserted by comparing full trace streams
  of two identically-configured runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Iterable, Iterator

from ..errors import SimulationError

__all__ = ["TraceRecord", "Tracer", "CoreTimeline"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``where`` identifies the location (usually a core name like ``n0.c3`` or
    a subsystem like ``wire``); ``category`` is a dotted event family
    (``marcel.switch``, ``pioman.poll``, ``nmad.submit`` …).
    """

    time: float
    category: str
    where: str
    label: str
    data: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.data:
            if k == key:
                return v
        return default

    def format(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.data)
        return f"[{self.time:12.3f}µs] {self.where:<10} {self.category:<22} {self.label} {extra}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` entries.

    ``enabled_categories`` filters at record time: ``None`` records
    everything, an empty set nothing. Category matching is by prefix, so
    enabling ``"pioman"`` records ``pioman.poll``, ``pioman.task`` etc.

    ``max_records`` bounds memory on long runs: when set, ``records``
    becomes a ring buffer keeping only the newest ``max_records`` entries
    (``total_recorded`` still counts everything, ``dropped_records`` the
    evictions). Determinism tests keep working on capped traces: two
    identical runs evict identically, so :meth:`signature` still matches.
    """

    def __init__(
        self,
        enabled_categories: Iterable[str] | None = None,
        max_records: int | None = None,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise SimulationError(f"max_records must be >= 1, got {max_records}")
        self.max_records = max_records
        self.records: "deque[TraceRecord] | list[TraceRecord]" = (
            deque(maxlen=max_records) if max_records is not None else []
        )
        #: records ever seen (capped or not); evictions = total - len(records)
        self.total_recorded: int = 0
        self.enabled: tuple[str, ...] | None = (
            None if enabled_categories is None else tuple(enabled_categories)
        )
        #: optional live sink, e.g. ``print`` for interactive debugging
        self.sink: Callable[[TraceRecord], None] | None = None

    @property
    def dropped_records(self) -> int:
        """Entries evicted by the ``max_records`` ring buffer."""
        return self.total_recorded - len(self.records)

    def wants(self, category: str) -> bool:
        if self.enabled is None:
            return True
        return any(category.startswith(prefix) for prefix in self.enabled)

    def record(self, time: float, category: str, where: str, label: str, **data: Any) -> None:
        if not self.wants(category):
            return
        rec = TraceRecord(time, category, where, label, tuple(sorted(data.items())))
        self.records.append(rec)  # deque evicts the oldest when capped
        self.total_recorded += 1
        if self.sink is not None:
            self.sink(rec)

    # -- queries ----------------------------------------------------------------

    def filter(self, category: str = "", where: str = "") -> Iterator[TraceRecord]:
        """Iterate records whose category/where start with the given prefixes."""
        for rec in self.records:
            if rec.category.startswith(category) and rec.where.startswith(where):
                yield rec

    def count(self, category: str = "", where: str = "") -> int:
        return sum(1 for _ in self.filter(category, where))

    def dump(self, limit: int | None = None) -> str:
        recs: Iterable[TraceRecord] = (
            self.records if limit is None else islice(self.records, limit)
        )
        return "\n".join(r.format() for r in recs)

    def signature(self) -> tuple[tuple[float, str, str, str], ...]:
        """Hashable summary used by determinism tests."""
        return tuple((r.time, r.category, r.where, r.label) for r in self.records)


@dataclass
class CoreTimeline:
    """Busy/idle accounting for one core.

    Intervals are accumulated by the Marcel scheduler: ``busy`` when a user
    thread computes, ``service`` when PIOMan/tasklet work runs, ``idle``
    otherwise.
    """

    name: str
    busy_us: float = 0.0
    service_us: float = 0.0
    idle_us: float = 0.0
    intervals: list[tuple[float, float, str]] = field(default_factory=list)

    def add(self, start: float, end: float, kind: str) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        span = end - start
        if kind == "busy":
            self.busy_us += span
        elif kind == "service":
            self.service_us += span
        elif kind == "idle":
            self.idle_us += span
        else:
            raise ValueError(f"unknown interval kind {kind!r}")
        self.intervals.append((start, end, kind))

    @property
    def total_us(self) -> float:
        return self.busy_us + self.service_us + self.idle_us

    def utilization(self) -> float:
        """Fraction of accounted time spent on application compute."""
        total = self.total_us
        return self.busy_us / total if total > 0 else 0.0

    def service_fraction(self) -> float:
        """Fraction of accounted time spent on communication service work."""
        total = self.total_us
        return self.service_us / total if total > 0 else 0.0
