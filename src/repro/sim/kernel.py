"""The discrete-event simulation loop.

:class:`Simulator` owns the virtual clock and a binary-heap event queue.
Everything else in the library — Marcel cores, NIC DMA engines, wire
deliveries, PIOMan timers — is expressed as callbacks scheduled here.

Determinism contract
--------------------
Events fire in ``(time, priority, sequence)`` order. Sequence numbers are
allocated at scheduling time, so the complete execution is a pure function
of the initial schedule and the callbacks' behaviour. Any randomness must
come from :class:`repro.sim.rng.RngStreams` seeded from the run config.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

from ..errors import DeadlockError, SimulationError
from .events import EventHandle, Priority

__all__ = ["Simulator"]


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.tracing.Tracer`, carried here so every
        layer built on the simulator can reach the run's tracer. The
        kernel itself never consults it in the per-event path — trace
        emission lives in the layers (scheduler, sessions), which bind a
        no-op helper when no tracer is attached.
    """

    def __init__(self, trace: Any = None) -> None:
        self._now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.trace = trace
        #: callbacks invoked when :meth:`run` drains the queue; used by
        #: higher layers (Marcel) to report blocked threads for deadlock
        #: diagnostics.
        self._liveness_probes: list[Callable[[], Iterable[str]]] = []
        #: total events fired (statistics / regression checks)
        self.events_fired: int = 0
        #: callbacks fired after every event with the current time; observers
        #: must not schedule events (they exist so samplers can piggyback on
        #: the loop without perturbing it — see ``repro.obs.sampler``).
        self._observers: list[Callable[[float], None]] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq += 1
        # ``args`` is already a tuple (built by the ``*args`` packing);
        # re-wrapping it was a per-event allocation for nothing.
        handle = EventHandle(time, priority, self._seq, fn, args, label)
        heapq.heappush(self._heap, handle)
        return handle

    def call_soon(
        self, fn: Callable[..., Any], *args: Any, priority: int = Priority.NORMAL, label: str = ""
    ) -> EventHandle:
        """Schedule ``fn(*args)`` for the current instant (after the running
        callback returns)."""
        return self.schedule_at(self._now, fn, *args, priority=priority, label=label)

    # -- liveness ------------------------------------------------------------

    def add_liveness_probe(self, probe: Callable[[], Iterable[str]]) -> None:
        """Register a probe reporting names of still-blocked entities.

        When :meth:`run` exhausts the event queue, every probe is asked for
        blocked entities; if any reports one, a :class:`DeadlockError` is
        raised instead of returning silently.
        """
        self._liveness_probes.append(probe)

    # -- observers -----------------------------------------------------------

    def add_observer(self, fn: Callable[[float], None]) -> None:
        """Call ``fn(now)`` after every fired event.

        Observers run outside any execution context and must not schedule
        events or otherwise mutate simulation state; they are a read-only
        window for metrics sampling.
        """
        self._observers.append(fn)

    def remove_observer(self, fn: Callable[[float], None]) -> None:
        """Deregister ``fn`` (idempotent)."""
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    def _check_liveness(self) -> None:
        blocked: list[str] = []
        for probe in self._liveness_probes:
            blocked.extend(probe())
        if blocked:
            raise DeadlockError(
                f"event queue drained at t={self._now:.3f}µs with "
                f"{len(blocked)} blocked entities: {', '.join(sorted(blocked)[:12])}",
                blocked=tuple(blocked),
            )

    # -- execution -----------------------------------------------------------

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback completes."""
        self._stopped = True

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None if the queue is drained."""
        self._drop_dead()
        return self._heap[0].time if self._heap else None

    def _drop_dead(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Fire the next pending event. Returns False if the queue is empty."""
        self._drop_dead()
        if not self._heap:
            return False
        handle = heapq.heappop(self._heap)
        if handle.time < self._now:  # pragma: no cover - guarded at insert
            raise SimulationError("time went backwards")
        self._now = handle.time
        handle._fire()
        self.events_fired += 1
        if self._observers:
            for ob in tuple(self._observers):
                ob(self._now)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``stop()``.

        Returns the final virtual time. Raises :class:`DeadlockError` if the
        queue drains while liveness probes report blocked entities (only
        when ``until`` is None — bounded runs may legitimately stop early).

        This is the hot loop of every benchmark: it inlines :meth:`step`
        (one cancelled-event sweep per iteration instead of two), binds the
        heap and ``heapq.heappop`` locally, and touches the observer list
        only when one is registered. Behaviour is identical to driving the
        simulation through :meth:`step` — ``tests/sim/test_kernel_fastpath``
        pins that equivalence.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while not self._stopped:
                while heap and heap[0].cancelled:
                    heappop(heap)
                if not heap:
                    if until is None:
                        self._check_liveness()
                    break
                if until is not None and heap[0].time > until:
                    self._now = until
                    break
                handle = heappop(heap)
                self._now = handle.time
                handle._fire()
                self.events_fired += 1
                # observers may detach themselves mid-run, so iterate a
                # snapshot — but only pay for the copy when any exist
                observers = self._observers
                if observers:
                    for ob in tuple(observers):
                        ob(self._now)
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now:.3f}µs "
                        "(runaway simulation?)"
                    )
        finally:
            self._running = False
        return self._now

    # -- introspection ---------------------------------------------------------

    def pending_count(self) -> int:
        """Number of scheduled, non-cancelled events (O(n); for tests)."""
        return sum(1 for h in self._heap if h.pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f}µs pending={len(self._heap)}>"
