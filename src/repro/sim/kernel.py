"""The discrete-event simulation loop.

:class:`Simulator` owns the virtual clock and a pluggable event queue
(binary heap or calendar queue — see :mod:`repro.sim.queues`).
Everything else in the library — Marcel cores, NIC DMA engines, wire
deliveries, PIOMan timers — is expressed as callbacks scheduled here.

Determinism contract
--------------------
Events fire in ``(time, priority, sequence)`` order. Sequence numbers are
allocated at scheduling time, so the complete execution is a pure function
of the initial schedule and the callbacks' behaviour — *independent of the
queue implementation*. Any randomness must come from
:class:`repro.sim.rng.RngStreams` seeded from the run config.

Bounded-run semantics
---------------------
``run(until=T)`` fires every event with ``time <= T`` and always leaves
the clock at exactly ``T`` when it returns because of the bound — whether
events remain beyond ``T`` or the queue drained early — so callers
interleaving bounded runs with ``schedule_at`` see a consistent clock.
``run(max_events=N)`` raises only when work genuinely remains after the
Nth event; a run that *completes* (drains, stops, or reaches ``until``)
in exactly N events returns normally. ``stop()`` requested before
``run()`` is honoured: the run fires zero events and consumes the stop.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Iterable, Union

from ..errors import DeadlockError, SimulationError
from .events import EventHandle, Priority, _noop
from .queues import CalendarQueue, EventQueue, HeapQueue, make_queue

__all__ = ["Simulator"]

#: recycled EventHandle objects kept per simulator (allocation churn cap)
_POOL_MAX = 512


def _pool_baseline() -> int:
    """Refcount of a function-local object with no other holders.

    A fired handle is recycled into the pool only when its refcount
    proves the caller kept no reference to it — so a retained handle
    (e.g. a timer someone may still cancel) is never reused. On runtimes
    without refcounts, pooling is disabled.
    """
    getrefcount = getattr(sys, "getrefcount", None)
    if getrefcount is None:  # pragma: no cover - non-CPython
        return -1
    probe = object()
    return int(getrefcount(probe))


_POOL_REFS = _pool_baseline()


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.tracing.Tracer`, carried here so every
        layer built on the simulator can reach the run's tracer. The
        kernel itself never consults it in the per-event path — trace
        emission lives in the layers (scheduler, sessions), which bind a
        no-op helper when no tracer is attached.
    queue:
        Event-queue implementation: ``"heap"`` (default), ``"calendar"``,
        or an :class:`repro.sim.queues.EventQueue` instance. Fire order
        is identical for every implementation; the calendar queue is the
        fast one (O(1) amortized, batch firing, cancelled-entry
        compaction) and is what :class:`repro.config.TimingModel` selects
        for engine runs, with the heap as the conservative fallback.
    execution:
        Optional :class:`repro.harness.executors.ExecutionConfig`. The
        kernel itself is single-threaded — partitioned execution lives in
        :mod:`repro.sim.partition` — but the config's ``queue`` override
        is honoured here so one object can steer a whole run's execution
        (``Simulator(execution=cfg)`` and ``ClusterRuntime.build(execution=cfg)``
        pick the same queue).
    """

    def __init__(
        self,
        trace: Any = None,
        queue: Union[str, EventQueue] = "heap",
        execution: Any = None,
    ) -> None:
        if execution is not None and getattr(execution, "queue", None) is not None:
            queue = execution.queue
        self._now: float = 0.0
        self._queue: EventQueue = make_queue(queue)
        #: the ExecutionConfig this kernel was built under (informational)
        self.execution = execution
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.trace = trace
        #: recycled handles (see _pool_baseline); schedule_at reuses them
        self._pool: list[EventHandle] = []
        #: callbacks invoked when :meth:`run` drains the queue; used by
        #: higher layers (Marcel) to report blocked threads for deadlock
        #: diagnostics.
        self._liveness_probes: list[Callable[[], Iterable[str]]] = []
        #: total events fired (statistics / regression checks)
        self.events_fired: int = 0
        #: callbacks fired after every event with the current time; observers
        #: must not schedule events (they exist so samplers can piggyback on
        #: the loop without perturbing it — see ``repro.obs.sampler``).
        self._observers: list[Callable[[float], None]] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    @property
    def queue(self) -> EventQueue:
        """The event-queue implementation this simulator runs on."""
        return self._queue

    def queue_stats(self) -> dict[str, object]:
        """Implementation counters of the event queue (entries, cancelled,
        compactions, …) — see :meth:`repro.sim.queues.EventQueue.stats`."""
        return self._queue.stats()

    # -- scheduling ----------------------------------------------------------

    # ``schedule`` and ``schedule_at`` deliberately duplicate one body:
    # they are the hottest call sites in the whole library (one-plus calls
    # per fired event), and the extra Python frame of a delegating wrapper
    # is measurable at kernel-benchmark scale. Keep the two bodies in
    # lockstep; the push fast path mirrors CalendarQueue.push /
    # HeapQueue.push, whose tests pin the shared semantics.

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        time = self._now + delay
        seq = self._seq + 1
        self._seq = seq
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.priority = priority
            handle.seq = seq
            handle._key = (time, priority, seq)
            handle._fn = fn
            handle._args = args
            handle.cancelled = False
            handle.fired = False
            handle.label = label
        else:
            handle = EventHandle(time, priority, seq, fn, args, label)
        queue = self._queue
        if type(queue) is CalendarQueue:
            handle._queue = queue
            bidx = int(time * queue._inv_width)
            handle._bidx = bidx
            queue._count += 1
            if bidx > queue._cur:
                queue._buckets[bidx & queue._mask].append(handle)
                queue._bucket_count += 1
            else:
                queue._push_near(handle, bidx)
        elif type(queue) is HeapQueue:
            handle._queue = queue
            heapq.heappush(queue._heap, handle)
        else:
            queue.push(handle)
        return handle

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq + 1
        self._seq = seq
        pool = self._pool
        if pool:
            # recycle a fired handle: same fields as __init__, no allocation
            handle = pool.pop()
            handle.time = time
            handle.priority = priority
            handle.seq = seq
            handle._key = (time, priority, seq)
            handle._fn = fn
            # ``args`` is already a tuple (built by the ``*args`` packing);
            # re-wrapping it was a per-event allocation for nothing.
            handle._args = args
            handle.cancelled = False
            handle.fired = False
            handle.label = label
        else:
            handle = EventHandle(time, priority, seq, fn, args, label)
        queue = self._queue
        if type(queue) is CalendarQueue:
            handle._queue = queue
            bidx = int(time * queue._inv_width)
            handle._bidx = bidx
            queue._count += 1
            if bidx > queue._cur:
                queue._buckets[bidx & queue._mask].append(handle)
                queue._bucket_count += 1
            else:
                queue._push_near(handle, bidx)
        elif type(queue) is HeapQueue:
            handle._queue = queue
            heapq.heappush(queue._heap, handle)
        else:
            queue.push(handle)
        return handle

    def call_soon(
        self, fn: Callable[..., Any], *args: Any, priority: int = Priority.NORMAL, label: str = ""
    ) -> EventHandle:
        """Schedule ``fn(*args)`` for the current instant (after the running
        callback returns)."""
        return self.schedule_at(self._now, fn, *args, priority=priority, label=label)

    # -- liveness ------------------------------------------------------------

    def add_liveness_probe(self, probe: Callable[[], Iterable[str]]) -> None:
        """Register a probe reporting names of still-blocked entities.

        When :meth:`run` exhausts the event queue, every probe is asked for
        blocked entities; if any reports one, a :class:`DeadlockError` is
        raised instead of returning silently.
        """
        self._liveness_probes.append(probe)

    # -- observers -----------------------------------------------------------

    def add_observer(self, fn: Callable[[float], None]) -> None:
        """Call ``fn(now)`` after every fired event.

        Observers run outside any execution context and must not schedule
        events or otherwise mutate simulation state; they are a read-only
        window for metrics sampling.
        """
        self._observers.append(fn)

    def remove_observer(self, fn: Callable[[float], None]) -> None:
        """Deregister ``fn`` (idempotent)."""
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    def _check_liveness(self) -> None:
        blocked: list[str] = []
        for probe in self._liveness_probes:
            blocked.extend(probe())
        if blocked:
            raise DeadlockError(
                f"event queue drained at t={self._now:.3f}µs with "
                f"{len(blocked)} blocked entities: {', '.join(sorted(blocked)[:12])}",
                blocked=tuple(blocked),
            )

    # -- execution -----------------------------------------------------------

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback completes.

        A stop requested while no run is active is *pending*: the next
        :meth:`run` fires zero events, leaves the clock untouched, and
        consumes the stop (so the run after that proceeds normally).
        """
        self._stopped = True

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None if the queue is drained."""
        return self._queue.peek_time()

    def step(self) -> bool:
        """Fire the next pending event. Returns False if the queue is empty."""
        handle = self._queue.pop_next()
        if handle is None:
            return False
        if handle.time < self._now:  # pragma: no cover - guarded at insert
            raise SimulationError("time went backwards")
        self._now = handle.time
        handle._fire()
        self.events_fired += 1
        if self._observers:
            for ob in tuple(self._observers):
                ob(self._now)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``stop()``.

        Returns the final virtual time. Raises :class:`DeadlockError` if the
        queue drains while liveness probes report blocked entities (only
        when ``until`` is None — bounded runs may legitimately stop early).

        Semantics pinned by ``tests/sim/test_kernel.py``:

        * With ``until=T`` the clock always lands on exactly ``T`` when the
          bound ends the run — including when the queue drains before ``T``
          (the clock never goes backwards: ``T`` in the past is a no-op).
        * ``max_events=N`` raises *only* if work remains after the Nth
          event; completing in exactly N events is legitimate.
        * A :meth:`stop` requested before the call fires zero events.

        This is the hot loop of every benchmark: per queue implementation
        it inlines the pop/fire sequence (heap: local ``heappop`` binding,
        one cancelled sweep per iteration; calendar: straight-line batch
        consumption) and recycles fired handles nobody retained. Behaviour
        is identical to driving the simulation through :meth:`step` —
        ``tests/sim/test_kernel_fastpath`` pins that equivalence.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            if self._stopped:
                return self._now
            queue = self._queue
            free = until is None and max_events is None
            if type(queue) is CalendarQueue:
                if free:
                    return self._run_calendar_free(queue)
                return self._run_calendar(queue, until, max_events)
            if type(queue) is HeapQueue:
                if free:
                    return self._run_heap_free(queue)
                return self._run_heap(queue, until, max_events)
            return self._run_generic(queue, until, max_events)
        finally:
            self._running = False
            self._stopped = False

    def _finish_drained(self, until: float | None) -> None:
        if until is None:
            self._check_liveness()
        elif until > self._now:
            self._now = until

    def _runaway(self, max_events: int) -> SimulationError:
        return SimulationError(
            f"exceeded max_events={max_events} at t={self._now:.3f}µs "
            "(runaway simulation?)"
        )

    def _run_heap_free(self, queue: HeapQueue) -> float:
        """Unbounded heap run (no ``until``/``max_events``): the benchmark
        loop, with the bound checks compiled out and ``events_fired``
        flushed lazily — it is exact whenever an observer fires and when
        the run returns (or raises), which is every point an outside
        reader can observe mid-run."""
        heap = queue._heap
        pool = self._pool
        heappop = heapq.heappop
        getrefcount = sys.getrefcount if _POOL_REFS > 0 else None
        observers = self._observers
        ef = self.events_fired
        try:
            while True:
                while heap and heap[0].cancelled:
                    heappop(heap)
                    queue._cancelled -= 1
                if not heap:
                    self._finish_drained(None)
                    break
                handle = heappop(heap)
                self._now = handle.time
                handle.fired = True
                handle._fn(*handle._args)
                ef += 1
                if observers:
                    self.events_fired = ef
                    for ob in tuple(observers):
                        ob(self._now)
                if (
                    getrefcount is not None
                    and len(pool) < _POOL_MAX
                    and getrefcount(handle) == _POOL_REFS
                ):
                    pool.append(handle)
                else:
                    handle._fn = _noop
                    handle._args = ()
                if self._stopped:
                    break
        finally:
            self.events_fired = ef
        return self._now

    def _run_calendar_free(self, queue: CalendarQueue) -> float:
        """Unbounded calendar run — see :meth:`_run_heap_free`. Straight-line
        batch consumption: index bump, fire, recycle."""
        pool = self._pool
        refill = queue._refill
        getrefcount = sys.getrefcount if _POOL_REFS > 0 else None
        observers = self._observers
        ef = self.events_fired
        try:
            while True:
                i = queue._batch_i
                batch = queue._batch
                if i >= len(batch):
                    if not refill():
                        self._finish_drained(None)
                        break
                    continue
                handle = batch[i]
                batch[i] = None
                queue._batch_i = i + 1
                if handle.cancelled:
                    queue._cancelled -= 1
                    # a cancelled entry nobody retained (ack'd retransmit
                    # timer whose owner dropped the handle) is recyclable
                    # like a fired one
                    if (
                        getrefcount is not None
                        and len(pool) < _POOL_MAX
                        and getrefcount(handle) == _POOL_REFS
                    ):
                        pool.append(handle)
                    continue
                self._now = handle.time
                handle.fired = True
                handle._fn(*handle._args)
                ef += 1
                if observers:
                    self.events_fired = ef
                    for ob in tuple(observers):
                        ob(self._now)
                if (
                    getrefcount is not None
                    and len(pool) < _POOL_MAX
                    and getrefcount(handle) == _POOL_REFS
                ):
                    pool.append(handle)
                else:
                    handle._fn = _noop
                    handle._args = ()
                if self._stopped:
                    break
        finally:
            self.events_fired = ef
        return self._now

    def _run_heap(self, queue: HeapQueue, until: float | None, max_events: int | None) -> float:
        fired = 0
        heap = queue._heap
        pool = self._pool
        heappop = heapq.heappop
        getrefcount = sys.getrefcount if _POOL_REFS > 0 else None
        observers = self._observers
        while not self._stopped:
            while heap and heap[0].cancelled:
                heappop(heap)
                queue._cancelled -= 1
            if not heap:
                self._finish_drained(until)
                break
            if until is not None and heap[0].time > until:
                if until > self._now:
                    self._now = until
                break
            if max_events is not None and fired >= max_events:
                raise self._runaway(max_events)
            handle = heappop(heap)
            self._now = handle.time
            handle.fired = True
            handle._fn(*handle._args)
            self.events_fired += 1
            # observers may detach themselves mid-run, so iterate a
            # snapshot — but only pay for the copy when any exist
            if observers:
                for ob in tuple(observers):
                    ob(self._now)
            fired += 1
            # recycle the handle if the refcount proves nobody kept it;
            # otherwise release the closure so retained handles keep
            # nothing alive across long simulations
            if (
                getrefcount is not None
                and len(pool) < _POOL_MAX
                and getrefcount(handle) == _POOL_REFS
            ):
                pool.append(handle)
            else:
                handle._fn = _noop
                handle._args = ()
        return self._now

    def _run_calendar(
        self, queue: CalendarQueue, until: float | None, max_events: int | None
    ) -> float:
        fired = 0
        pool = self._pool
        refill = queue._refill
        getrefcount = sys.getrefcount if _POOL_REFS > 0 else None
        # the observer list is only ever mutated in place, so the alias
        # tracks add_observer/remove_observer across the whole run
        observers = self._observers
        while not self._stopped:
            i = queue._batch_i
            batch = queue._batch
            if i >= len(batch):
                if not refill():
                    self._finish_drained(until)
                    break
                continue
            handle = batch[i]
            if handle.cancelled:
                batch[i] = None
                queue._batch_i = i + 1
                queue._cancelled -= 1
                continue
            time = handle.time
            if until is not None and time > until:
                # leave the handle in the batch: the run is resumable
                if until > self._now:
                    self._now = until
                break
            if max_events is not None and fired >= max_events:
                raise self._runaway(max_events)
            batch[i] = None
            queue._batch_i = i + 1
            self._now = time
            handle.fired = True
            handle._fn(*handle._args)
            self.events_fired += 1
            if observers:
                for ob in tuple(observers):
                    ob(self._now)
            fired += 1
            # recycle if the refcount proves nobody kept the handle (the
            # reused fields are overwritten at reuse); otherwise release
            # the closure so retained handles keep nothing alive
            if (
                getrefcount is not None
                and len(pool) < _POOL_MAX
                and getrefcount(handle) == _POOL_REFS
            ):
                pool.append(handle)
            else:
                handle._fn = _noop
                handle._args = ()
        return self._now

    def _run_generic(
        self, queue: EventQueue, until: float | None, max_events: int | None
    ) -> float:
        """Correctness-first loop for third-party EventQueue implementations."""
        fired = 0
        while not self._stopped:
            time = queue.peek_time()
            if time is None:
                self._finish_drained(until)
                break
            if until is not None and time > until:
                if until > self._now:
                    self._now = until
                break
            if max_events is not None and fired >= max_events:
                raise self._runaway(max_events)
            handle = queue.pop_next()
            assert handle is not None
            self._now = handle.time
            handle._fire()
            self.events_fired += 1
            observers = self._observers
            if observers:
                for ob in tuple(observers):
                    ob(self._now)
            fired += 1
        return self._now

    # -- introspection ---------------------------------------------------------

    def pending_count(self) -> int:
        """Number of scheduled, non-cancelled events (O(n); for tests)."""
        return self._queue.pending_count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f}µs pending={len(self._queue)}>"
