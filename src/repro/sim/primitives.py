"""Virtual-time synchronization primitives for :class:`SimProcess` code.

These are *simulation* primitives: they block a process in virtual time, not
a real OS thread. The Marcel layer builds thread-level mutexes and condition
variables on top of its own scheduler; the primitives here serve the network
machinery, PIOMan internals, and tests.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator

from ..errors import SimulationError
from .kernel import Simulator
from .process import Delay, WaitEvent

__all__ = ["SimEvent", "Mutex", "Semaphore", "Store"]


class SimEvent:
    """One-shot event carrying a value.

    Waiters registered before :meth:`trigger` are resumed (in registration
    order) at the trigger instant; waiters registered after it are resumed
    immediately (same instant, via ``call_soon``) — so "wait on an already
    triggered event" is well-defined and race-free.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim: Simulator, name: str = "event") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event. Triggering twice is an error (one-shot)."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.sim.call_soon(cb, value, label=f"{self.name}.wake")

    def add_waiter(self, cb: Callable[[Any], None]) -> None:
        """Register ``cb(value)`` to run when the event triggers."""
        if self.triggered:
            self.sim.call_soon(cb, self.value, label=f"{self.name}.wake")
        else:
            self._waiters.append(cb)

    def wait(self) -> WaitEvent:
        """Effect for ``yield ev.wait()`` inside a process generator."""
        return WaitEvent(self)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover
        state = "triggered" if self.triggered else f"{len(self._waiters)} waiters"
        return f"<SimEvent {self.name} {state}>"


class Mutex:
    """FIFO mutex for processes.

    Usage inside a process generator::

        yield from mutex.acquire()
        try:
            ...
        finally:
            mutex.release()
    """

    def __init__(self, sim: Simulator, name: str = "mutex") -> None:
        self.sim = sim
        self.name = name
        self.locked = False
        self._queue: deque[SimEvent] = deque()
        #: number of acquisitions that had to wait (contention statistic)
        self.contended_acquires = 0

    def acquire(self) -> Generator[Any, Any, None]:
        if not self.locked:
            self.locked = True
            return
        self.contended_acquires += 1
        gate = SimEvent(self.sim, name=f"{self.name}.gate")
        self._queue.append(gate)
        yield WaitEvent(gate)
        # Ownership was transferred by release(); nothing more to do.

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self.locked:
            return False
        self.locked = True
        return True

    def release(self) -> None:
        if not self.locked:
            raise SimulationError(f"release of unlocked mutex {self.name!r}")
        if self._queue:
            # Hand the lock directly to the next waiter (no barging).
            gate = self._queue.popleft()
            gate.trigger(None)
        else:
            self.locked = False


class Semaphore:
    """Counting semaphore for processes (FIFO wakeup order)."""

    def __init__(self, sim: Simulator, value: int = 0, name: str = "sem") -> None:
        if value < 0:
            raise SimulationError(f"negative semaphore value: {value}")
        self.sim = sim
        self.name = name
        self.value = value
        self._queue: deque[SimEvent] = deque()

    def post(self, count: int = 1) -> None:
        if count <= 0:
            raise SimulationError(f"semaphore post count must be > 0, got {count}")
        for _ in range(count):
            if self._queue:
                self._queue.popleft().trigger(None)
            else:
                self.value += 1

    def wait(self) -> Generator[Any, Any, None]:
        if self.value > 0:
            self.value -= 1
            return
        gate = SimEvent(self.sim, name=f"{self.name}.gate")
        self._queue.append(gate)
        yield WaitEvent(gate)

    def try_wait(self) -> bool:
        if self.value > 0:
            self.value -= 1
            return True
        return False


class Store:
    """Unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` blocks (in virtual time) until an item is
    available. Items are delivered in insertion order, one per waiter, in
    waiter-arrival order.
    """

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Generator[Any, Any, Any]:
        if self._items:
            return self._items.popleft()
        gate = SimEvent(self.sim, name=f"{self.name}.get")
        self._getters.append(gate)
        item = yield WaitEvent(gate)
        return item

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def __len__(self) -> int:
        return len(self._items)


def timeout(sim: Simulator, duration: float) -> Delay:
    """Readable alias: ``yield timeout(sim, 3.0)``."""
    return Delay(duration)
