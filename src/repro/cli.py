"""Command-line interface: regenerate the paper's evaluation from a shell.

::

    python -m repro fig5            # Figure 5 table + ASCII plot
    python -m repro fig6            # Figure 6
    python -m repro table1          # Table 1
    python -m repro all             # everything
    python -m repro info            # platform/calibration summary
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .config import TimingModel
from .topology.builder import paper_testbed
from .units import fmt_size

__all__ = ["main"]


def _execution_from_args(args: argparse.Namespace):
    """``--workers N`` → a pool config; absent → honour $REPRO_BENCH_WORKERS.

    The CLI speaks the unified ``execution=`` surface, so no deprecation
    warnings are emitted on the experiment entry points."""
    from .harness.executors import ExecutionConfig

    workers = getattr(args, "workers", None)
    if workers is not None:
        return ExecutionConfig.pool(workers)
    return ExecutionConfig.from_env()


def _cmd_fig5(args: argparse.Namespace) -> int:
    from .harness.experiments import experiment_fig5

    result = experiment_fig5(iterations=args.iterations, execution=_execution_from_args(args))
    print(result.format(plot=not args.no_plot))
    cross = result.crossover_size()
    if cross:
        print(f"\ncrossover (comm == compute): {fmt_size(cross)}")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .harness.experiments import experiment_fig6

    result = experiment_fig6(iterations=args.iterations, execution=_execution_from_args(args))
    print(result.format(plot=not args.no_plot))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .harness.experiments import experiment_table1

    print(experiment_table1(execution=_execution_from_args(args)).format())
    print("\npaper: 441→382µs (14%) and 1183→1031µs (13%)")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    if getattr(args, "json", None):
        from .harness.experiments import run_all_experiments, save_results_json

        results = run_all_experiments(
            iterations=args.iterations, execution=_execution_from_args(args)
        )
        save_results_json(results, args.json)
        print(f"wrote machine-readable results to {args.json}")
    rc = _cmd_fig5(args)
    print()
    rc |= _cmd_fig6(args)
    print()
    rc |= _cmd_table1(args)
    return rc


def _demo_workload(engine: str, tracer=None, timing=None, faults=None):
    """One isend(32K)+compute(40µs)+swait round — the gantt/trace subject."""
    from .harness.runner import ClusterRuntime
    from .units import KiB

    rt = ClusterRuntime.build(engine=engine, tracer=tracer, timing=timing, faults=faults)

    def sender(ctx):
        nm = ctx.env["nm"]
        req = yield from nm.isend(ctx, 1, 0, KiB(32), buffer_id="b")
        yield ctx.compute(40.0)
        yield from nm.swait(ctx, req)
        if faults is not None:
            yield from nm.drain(ctx)

    def receiver(ctx):
        nm = ctx.env["nm"]
        req = yield from nm.irecv(ctx, 0, 0, KiB(32), buffer_id="r")
        yield ctx.compute(40.0)
        yield from nm.rwait(ctx, req)
        if faults is not None:
            yield from nm.drain(ctx)

    rt.spawn(0, sender, name="sender", core_index=0)
    rt.spawn(1, receiver, name="receiver", core_index=0)
    rt.run()
    return rt


def _emit_metrics_report(rt, path: str, suffix: str = "") -> None:
    """Write the merged run report (``--metrics <path>``); ``suffix``
    disambiguates when one invocation produces several runtimes."""
    import os.path

    from .obs import write_run_report

    if suffix:
        root, ext = os.path.splitext(path)
        path = f"{root}.{suffix}{ext or '.json'}"
    write_run_report(rt, path)
    print(f"metrics report: {path}")


def _cmd_gantt(args: argparse.Namespace) -> int:
    from .harness.timeline import overlap_ratio, render_gantt

    engines = (args.engine,) if args.engine else ("sequential", "pioman")
    for engine in engines:
        rt = _demo_workload(engine)
        sched = rt.node(0).scheduler
        active = [c.timeline for c in sched.cores if c.timeline.intervals]
        print(f"--- {engine} (node 0, finished at {rt.sim.now:.1f}µs) ---")
        print(render_gantt(active, width=72, t_end=rt.sim.now))
        print(f"overlap ratio: {overlap_ratio(sched) * 100:.0f}%\n")
        if args.metrics:
            _emit_metrics_report(rt, args.metrics, suffix=engine if len(engines) > 1 else "")
        rt.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .harness.traceviz import export_chrome_trace
    from .sim.tracing import Tracer

    rt = _demo_workload(args.engine or "pioman", tracer=Tracer())
    n = export_chrome_trace(rt, args.out)
    print(f"wrote {n} events to {args.out} (open in chrome://tracing or ui.perfetto.dev)")
    if args.metrics:
        _emit_metrics_report(rt, args.metrics)
    rt.close()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    """Ping-pong demo; with ``--faults`` the wire misbehaves and the
    recovery layer (unless ``--no-retransmit``) repairs it."""
    from .errors import DeadlockError
    from .faults import FaultPlan
    from .harness.runner import ClusterRuntime

    plan = None
    if args.faults:
        plan = FaultPlan.lossy(
            drop=args.drop, corrupt=args.corrupt, duplicate=args.duplicate, seed=args.seed
        )
    engines = (args.engine,) if args.engine else ("sequential", "pioman")
    for engine in engines:
        rt = ClusterRuntime.build(engine=engine, faults=plan, recover=not args.no_retransmit)
        n, size = args.messages, args.size

        def origin(ctx):
            nm = ctx.env["nm"]
            for i in range(n):
                yield from nm.send(ctx, 1, i, size, payload=i)
                yield from nm.recv(ctx, 1, 1000 + i, size)
            yield from nm.drain(ctx)

        def echo(ctx):
            nm = ctx.env["nm"]
            for i in range(n):
                req = yield from nm.recv(ctx, 0, i, size)
                yield from nm.send(ctx, 0, 1000 + i, size, payload=req.data)
            yield from nm.drain(ctx)

        rt.spawn(0, origin, name="origin")
        rt.spawn(1, echo, name="echo")
        try:
            end = rt.run()
        except DeadlockError as exc:
            print(f"{engine:<10}: LOST MESSAGES (no retransmission) — {exc}")
            rt.close()
            continue
        line = f"{engine:<10}: {n} round-trips of {fmt_size(size)} in {end:.1f}µs"
        if rt.fault_injector is not None:
            inj = rt.fault_injector.stats()
            rec = rt.recovery_stats()
            line += (
                f" | faults: drops={inj['drops'] + inj['flap_drops']}"
                f" corrupt={inj['corruptions']} dup={inj['duplicates']}"
                f" | recovery: retransmits={rec['retransmits'] + rec['rts_retries']}"
                f" acks={rec['acks_received']} gave_up={rec['gave_up']}"
            )
        print(line)
        if args.metrics:
            _emit_metrics_report(rt, args.metrics, suffix=engine if len(engines) > 1 else "")
        rt.close()
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run the demo round with the registry on and print/export metrics."""
    from .config import ObsConfig
    from .faults import FaultPlan
    from .obs import snapshot_to_json, snapshot_to_prometheus, timeseries_to_csv
    from .sim.tracing import Tracer

    plan = None
    if args.faults:
        plan = FaultPlan.lossy(drop=0.1, corrupt=0.02, duplicate=0.02, seed=0)
    timing = TimingModel().replace(
        obs=ObsConfig(enabled=True, sample_interval_us=args.sample)
    )
    rt = _demo_workload(args.engine or "pioman", tracer=Tracer(), timing=timing, faults=plan)
    snap = rt.metrics()
    if args.format == "prom":
        print(snapshot_to_prometheus(snap), end="")
    elif args.format == "csv":
        if rt.sampler is None:
            print("no time series: pass --sample INTERVAL_US", file=sys.stderr)
            rt.close()
            return 2
        print(timeseries_to_csv(rt.sampler), end="")
    else:
        print(snapshot_to_json(snap))
    if args.out:
        _emit_metrics_report(rt, args.out)
    rt.close()
    return 0


def _cmd_pdes(args: argparse.Namespace) -> int:
    """Run a PHOLD workload on the partitioned conservative kernel and
    check the trace digest against the serial reference."""
    import time

    from .apps.pdes import PholdProgram
    from .sim.partition import PartitionPlan, PartitionedSimulation

    program = PholdProgram(jobs_per_node=args.jobs, hops=args.hops)
    plan = PartitionPlan.from_timing(args.nodes, args.partitions)
    serial_plan = PartitionPlan.from_timing(args.nodes, 1)

    t0 = time.perf_counter()
    with PartitionedSimulation(program, serial_plan, seed=args.seed) as ref:
        ref.run()
        ref_digest, ref_events = ref.trace_digest(), ref.events_fired
    t_serial = time.perf_counter() - t0

    mode = "inproc" if args.inproc else "auto"
    t0 = time.perf_counter()
    with PartitionedSimulation(program, plan, seed=args.seed, mode=mode) as sim:
        end = sim.run()
        digest, events = sim.trace_digest(), sim.events_fired
        stats = sim.stats()
    t_par = time.perf_counter() - t0

    match = "MATCH" if digest == ref_digest else "MISMATCH"
    print(f"phold: {args.nodes} nodes, {args.partitions} partitions "
          f"({sim.mode} mode), seed {args.seed}")
    print(f"  events   : {events} (serial: {ref_events}), end t={end:.1f}µs")
    print(f"  digest   : {digest} vs serial {ref_digest} -> {match}")
    print(f"  nulls    : sent={stats['null_msgs_sent']} "
          f"recv={stats['null_msgs_received']} | cross-partition msgs="
          f"{stats['msgs_sent']}")
    print(f"  sync     : lookahead_stalls={stats['lookahead_stalls']} "
          f"horizon_advances={stats['horizon_advances']}")
    print(f"  wall     : serial {t_serial * 1e3:.1f}ms, "
          f"partitioned {t_par * 1e3:.1f}ms")
    return 0 if digest == ref_digest else 1


def _cmd_info(args: argparse.Namespace) -> int:
    timing = TimingModel()
    cluster = paper_testbed()
    print(f"repro {__version__} — PIOMan/NewMadeleine/Marcel reproduction")
    print(f"platform : {cluster.describe()}")
    print(f"NIC      : MX-like, PIO ≤ {timing.nic.pio_threshold}B, "
          f"eager ≤ {fmt_size(timing.nic.rdv_threshold)}, "
          f"wire {timing.nic.wire_bw:.0f}B/µs, latency {timing.nic.wire_latency_us}µs")
    print(f"host     : memcpy {timing.host.memcpy_bw:.0f}B/µs, "
          f"ctx-switch {timing.host.context_switch_us}µs, "
          f"tasklet dispatch (remote) {timing.host.tasklet_remote_us}µs")
    print(f"marcel   : tick {timing.marcel.timer_tick_us}µs, "
          f"quantum {timing.marcel.quantum_us}µs")
    print("experiments: fig5 (small-message offloading), fig6 (rendezvous "
          "progression), table1 (convolution meta-application)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'A multithreaded communication engine for "
        "multicore architectures' (IPDPS-CAC 2008)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--faults",
        action="store_true",
        help="enable fault injection on the fabric (honoured by the demo and metrics commands)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn, doc in (
        ("fig5", _cmd_fig5, "Figure 5: small-message submission offloading"),
        ("fig6", _cmd_fig6, "Figure 6: rendezvous handshake progression"),
        ("table1", _cmd_table1, "Table 1: convolution meta-application"),
        ("all", _cmd_all, "run every experiment"),
        ("info", _cmd_info, "show platform and calibration constants"),
        ("gantt", _cmd_gantt, "render a per-core ASCII Gantt of a demo round"),
        ("trace", _cmd_trace, "export a Chrome/Perfetto trace of a demo round"),
        ("demo", _cmd_demo, "ping-pong smoke run (combine with --faults for a lossy wire)"),
        ("metrics", _cmd_metrics, "run a demo round and dump the unified metrics registry"),
        ("pdes", _cmd_pdes, "partitioned parallel-DES demo (digest-checked against serial)"),
    ):
        p = sub.add_parser(name, help=doc)
        p.set_defaults(fn=fn)
        if name in ("fig5", "fig6", "all"):
            p.add_argument("--iterations", type=int, default=20, help="benchmark iterations per point")
            p.add_argument("--no-plot", action="store_true", help="table only, no ASCII plot")
        if name in ("fig5", "fig6", "table1", "all"):
            p.add_argument(
                "--workers", type=int, default=None, metavar="N",
                help="run experiment grid points on N worker processes "
                "(0 = all CPUs; default: $REPRO_BENCH_WORKERS or serial); "
                "results are identical to a serial run",
            )
        if name == "all":
            p.add_argument("--json", default=None, help="also save machine-readable results to this path")
        if name in ("gantt", "trace", "demo", "metrics"):
            p.add_argument("--engine", choices=("sequential", "pioman"), default=None)
        if name in ("gantt", "trace", "demo"):
            p.add_argument(
                "--metrics",
                default=None,
                metavar="PATH",
                help="also write a merged metrics/trace run report (JSON) to PATH",
            )
        if name == "trace":
            p.add_argument("--out", default="repro_trace.json", help="output JSON path")
        if name == "metrics":
            p.add_argument(
                "--format", choices=("json", "prom", "csv"), default="json",
                help="stdout format: JSON snapshot, Prometheus text, or CSV time series",
            )
            p.add_argument(
                "--sample", type=float, default=0.0, metavar="US",
                help="time-series sampling interval in virtual µs (0 = no series)",
            )
            p.add_argument(
                "--out", default=None, metavar="PATH",
                help="also write the merged run report (JSON) to PATH",
            )
        if name == "pdes":
            p.add_argument("--nodes", type=int, default=8, help="simulated nodes")
            p.add_argument("--partitions", type=int, default=2, help="partition count")
            p.add_argument("--jobs", type=int, default=2, help="PHOLD jobs per node")
            p.add_argument("--hops", type=int, default=12, help="hops per job")
            p.add_argument("--seed", type=int, default=0, help="root RNG seed")
            p.add_argument(
                "--inproc", action="store_true",
                help="cooperative single-process engine (full null-message "
                "machinery, no worker processes)",
            )
        if name == "demo":
            p.add_argument("--messages", type=int, default=16, help="round-trips per engine")
            p.add_argument("--size", type=int, default=4096, help="message size in bytes")
            p.add_argument("--drop", type=float, default=0.1, help="per-packet drop probability")
            p.add_argument("--corrupt", type=float, default=0.02, help="per-packet corruption probability")
            p.add_argument("--duplicate", type=float, default=0.02, help="per-packet duplication probability")
            p.add_argument("--seed", type=int, default=0, help="fault plan seed")
            p.add_argument(
                "--no-retransmit",
                action="store_true",
                help="inject faults without the recovery layer (messages may be lost)",
            )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
