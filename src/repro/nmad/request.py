"""Communication requests and their state machines."""

from __future__ import annotations

import itertools
from typing import Any, Optional, TYPE_CHECKING

from ..errors import RequestError

if TYPE_CHECKING:  # pragma: no cover
    from ..marcel.sync import ThreadEvent

__all__ = ["ReqState", "Protocol", "NmRequest"]

_req_ids = itertools.count(1)


class Protocol:
    """Transfer protocol chosen for a request (decided by message size)."""

    PIO = "pio"
    EAGER = "eager"
    RDV = "rdv"

    ALL = (PIO, EAGER, RDV)


class ReqState:
    """Request lifecycle states.

    Send: ``CREATED → QUEUED → SUBMITTED → COMPLETED`` for PIO/eager;
    ``CREATED → QUEUED → RTS_SENT → DATA_SENDING → COMPLETED`` for
    rendezvous (the CTS reception moves RTS_SENT → DATA_SENDING).

    Recv: ``POSTED → COMPLETED`` for eager;
    ``POSTED → DATA_WAIT → COMPLETED`` for rendezvous (DATA_WAIT entered
    once the CTS answer is sent).
    """

    CREATED = "created"
    QUEUED = "queued"
    SUBMITTED = "submitted"
    RTS_SENT = "rts_sent"
    DATA_SENDING = "data_sending"
    POSTED = "posted"
    DATA_WAIT = "data_wait"
    COMPLETED = "completed"

    _SEND_TRANSITIONS = {
        CREATED: (QUEUED,),
        QUEUED: (SUBMITTED, RTS_SENT),
        SUBMITTED: (COMPLETED,),
        RTS_SENT: (DATA_SENDING,),
        DATA_SENDING: (COMPLETED,),
        COMPLETED: (),
    }
    _RECV_TRANSITIONS = {
        POSTED: (DATA_WAIT, COMPLETED),
        DATA_WAIT: (COMPLETED,),
        COMPLETED: (),
    }


class NmRequest:
    """One non-blocking send or receive."""

    __slots__ = (
        "req_id",
        "kind",
        "node_index",
        "peer",
        "tag",
        "size",
        "payload",
        "buffer_id",
        "state",
        "protocol",
        "seq",
        "producer_core",
        "data",
        "received_size",
        "source",
        "posted_at",
        "submitted_at",
        "completed_at",
        "completion_event",
        "blocking_watch",
        "tx_chunks_total",
        "tx_chunks_left",
    )

    def __init__(
        self,
        kind: str,
        node_index: int,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        buffer_id: object = None,
    ) -> None:
        if kind not in ("send", "recv"):
            raise RequestError(f"request kind must be send/recv, got {kind!r}")
        if size < 0:
            raise RequestError(f"negative message size: {size}")
        if kind == "send" and tag < 0:
            raise RequestError(f"send tags must be >= 0, got {tag}")
        if kind == "recv" and tag < -1:
            raise RequestError(f"recv tag must be >= 0 or ANY (-1), got {tag}")
        self.req_id = next(_req_ids)
        self.kind = kind
        self.node_index = node_index
        self.peer = peer
        self.tag = tag
        self.size = size
        self.payload = payload
        #: identity of the application buffer (registration cache key)
        self.buffer_id = buffer_id if buffer_id is not None else f"req{self.req_id}"
        self.state = ReqState.CREATED if kind == "send" else ReqState.POSTED
        self.protocol: Optional[str] = None
        self.seq: Optional[int] = None
        #: core that produced the data (NUMA-aware copy costs)
        self.producer_core: Optional[int] = None
        #: received payload (recv side)
        self.data: Any = None
        #: actual matched message size (recv side; may be < posted size)
        self.received_size: Optional[int] = None
        self.source: Optional[int] = None
        # timestamps (virtual µs)
        self.posted_at: float = 0.0
        self.submitted_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        #: lazily created one-shot thread event (waiters)
        self.completion_event: "ThreadEvent | None" = None
        #: set by PIOMan's blocking detection method while armed
        self.blocking_watch = False
        #: TX chunk accounting — how many wire chunks this send was split
        #: into (multirail eager striping or the pipelined RDV data phase)
        #: and how many are still in flight. 0/0 means "not yet split";
        #: completion paths treat that as a single implicit chunk.
        self.tx_chunks_total: int = 0
        self.tx_chunks_left: int = 0

    # -- TX chunk accounting ------------------------------------------------------

    def init_tx_chunks(self, nchunks: int) -> None:
        """Declare how many wire chunks must drain before this send is done."""
        if nchunks < 1:
            raise RequestError(f"send must have >= 1 chunk, got {nchunks}")
        if self.tx_chunks_total:
            return  # already declared (idempotent across per-chunk plans)
        self.tx_chunks_total = nchunks
        self.tx_chunks_left = nchunks

    def tx_chunk_done(self) -> bool:
        """Account one drained chunk; True when the last chunk just drained."""
        if self.tx_chunks_total == 0:
            self.init_tx_chunks(1)
        self.tx_chunks_left -= 1
        return self.tx_chunks_left <= 0

    # -- state ------------------------------------------------------------------

    def transition(self, new_state: str) -> None:
        table = (
            ReqState._SEND_TRANSITIONS if self.kind == "send" else ReqState._RECV_TRANSITIONS
        )
        if new_state not in table.get(self.state, ()):
            raise RequestError(
                f"request {self.req_id} ({self.kind}): illegal transition "
                f"{self.state} → {new_state}"
            )
        self.state = new_state

    @property
    def done(self) -> bool:
        return self.state == ReqState.COMPLETED

    def complete(self, now: float) -> None:
        """Mark completed and wake any waiters. Idempotence is an error —
        a request must complete exactly once."""
        self.transition(ReqState.COMPLETED)
        self.completed_at = now
        if self.completion_event is not None and not self.completion_event.triggered:
            self.completion_event.trigger(self)

    def latency(self) -> float:
        """Post-to-completion virtual time (raises if not completed)."""
        if self.completed_at is None:
            raise RequestError(f"request {self.req_id} not completed")
        return self.completed_at - self.posted_at

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<NmRequest#{self.req_id} {self.kind} n{self.node_index}"
            f"{'->' if self.kind == 'send' else '<-'}n{self.peer} "
            f"tag={self.tag} {self.size}B {self.state}>"
        )
