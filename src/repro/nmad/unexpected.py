"""Unexpected-message store.

§2.2: *"if an unexpected message arrives, it is copied into a buffer
allocated especially for unexpected messages. When the corresponding
receive request is posted, the message is detected and copied into the
application's buffer."*

The store keeps arrived-but-unmatched **eager payloads** (which already
cost one copy into the unexpected buffer, and will cost a second copy out
on match) and **rendezvous RTS descriptors** (no payload yet — matching a
posted receive later triggers the CTS answer).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import MatchingError

__all__ = ["ProbeInfo", "UnexpectedEager", "UnexpectedRts", "UnexpectedStore"]


@dataclass(frozen=True)
class ProbeInfo:
    """Typed result of a successful ``probe``/``iprobe``.

    ``rdv`` is True when the matched arrival is a rendezvous handshake
    (no payload buffered yet), False for a buffered eager payload.

    For one release this also answers ``info["source"]``-style mapping
    access, so callers written against the old dict result keep working;
    new code should use the attributes.
    """

    source: int
    tag: int
    size: int
    rdv: bool

    _FIELDS = ("source", "tag", "size", "rdv")

    def __getitem__(self, key: str) -> Any:
        if key in self._FIELDS:
            return getattr(self, key)
        raise KeyError(key)

    def keys(self):  # mapping-compat: dict(info) round-trips
        return iter(self._FIELDS)


@dataclass
class UnexpectedEager:
    """An eager payload sitting in the unexpected buffer."""

    source: int
    tag: int
    seq: int
    size: int
    payload: Any
    arrived_at: float


@dataclass
class UnexpectedRts:
    """A rendezvous handshake waiting for its receive to be posted."""

    source: int
    tag: int
    seq: int
    size: int
    send_req_id: int
    arrived_at: float


@dataclass
class UnexpectedStore:
    """FIFO store of unexpected arrivals (already sequence-ordered by the
    :class:`repro.nmad.tags.SequenceTracker` before insertion)."""

    _items: deque = field(default_factory=deque)
    #: peak occupancy in bytes (memory-pressure statistic)
    peak_bytes: int = 0
    _bytes: int = 0

    def add(self, item: "UnexpectedEager | UnexpectedRts") -> None:
        self._items.append(item)
        if isinstance(item, UnexpectedEager):
            self._bytes += item.size
            self.peak_bytes = max(self.peak_bytes, self._bytes)

    def match(self, source: int, tag: int, any_marker: int = -1) -> Optional[Any]:
        """Find-and-remove the oldest item compatible with a posted recv."""
        for i, item in enumerate(self._items):
            src_ok = source == any_marker or item.source == source
            tag_ok = tag == any_marker or item.tag == tag
            if src_ok and tag_ok:
                del self._items[i]
                if isinstance(item, UnexpectedEager):
                    self._bytes -= item.size
                return item
        return None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def buffered_bytes(self) -> int:
        return self._bytes

    def require_empty(self) -> None:
        """Diagnostic: raise if messages were never consumed (leak check)."""
        if self._items:
            raise MatchingError(
                f"{len(self._items)} unexpected messages never matched"
            )
