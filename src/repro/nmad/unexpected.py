"""Unexpected-message store.

§2.2: *"if an unexpected message arrives, it is copied into a buffer
allocated especially for unexpected messages. When the corresponding
receive request is posted, the message is detected and copied into the
application's buffer."*

The store keeps arrived-but-unmatched **eager payloads** (which already
cost one copy into the unexpected buffer, and will cost a second copy out
on match) and **rendezvous RTS descriptors** (no payload yet — matching a
posted receive later triggers the CTS answer). Both item kinds are built
from their typed wire frames (:class:`repro.nmad.wire.EagerFrame` /
:class:`repro.nmad.wire.RtsFrame`) via :meth:`from_frame`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

from ..errors import MatchingError

if TYPE_CHECKING:  # pragma: no cover - frames only appear in annotations
    from .wire import EagerFrame, RtsFrame

__all__ = [
    "ProbeInfo",
    "UnexpectedEager",
    "UnexpectedRts",
    "UnexpectedItem",
    "UnexpectedStore",
]


@dataclass(frozen=True, slots=True)
class ProbeInfo:
    """Typed result of a successful ``probe``/``iprobe``.

    ``rdv`` is True when the matched arrival is a rendezvous handshake
    (no payload buffered yet), False for a buffered eager payload.

    For one release this also answers ``info["source"]``-style mapping
    access, so callers written against the old dict result keep working;
    new code should use the attributes.
    """

    source: int
    tag: int
    size: int
    rdv: bool

    _FIELDS = ("source", "tag", "size", "rdv")

    @classmethod
    def of(cls, item: "UnexpectedItem") -> "ProbeInfo":
        """The probe view of one unexpected-store item."""
        return cls(
            source=item.source,
            tag=item.tag,
            size=item.size,
            rdv=isinstance(item, UnexpectedRts),
        )

    def __getitem__(self, key: str) -> Any:
        if key in self._FIELDS:
            return getattr(self, key)
        raise KeyError(key)

    def keys(self) -> Iterator[str]:  # mapping-compat: dict(info) round-trips
        return iter(self._FIELDS)


@dataclass(slots=True)
class UnexpectedEager:
    """An eager payload sitting in the unexpected buffer."""

    source: int
    tag: int
    seq: int
    size: int
    payload: Any
    arrived_at: float

    @classmethod
    def from_frame(cls, frame: "EagerFrame", arrived_at: float) -> "UnexpectedEager":
        """Buffer one sequence-ordered whole-message eager frame."""
        return cls(
            source=frame.src,
            tag=frame.tag,
            seq=frame.seq,
            size=frame.size,
            payload=frame.payload,
            arrived_at=arrived_at,
        )


@dataclass(slots=True)
class UnexpectedRts:
    """A rendezvous handshake waiting for its receive to be posted."""

    source: int
    tag: int
    seq: int
    size: int
    send_req_id: int
    arrived_at: float

    @classmethod
    def from_frame(cls, frame: "RtsFrame", arrived_at: float) -> "UnexpectedRts":
        """Buffer one sequence-ordered rendezvous handshake frame."""
        return cls(
            source=frame.src,
            tag=frame.tag,
            seq=frame.seq,
            size=frame.size,
            send_req_id=frame.send_req_id,
            arrived_at=arrived_at,
        )


UnexpectedItem = Union[UnexpectedEager, UnexpectedRts]


@dataclass
class UnexpectedStore:
    """FIFO store of unexpected arrivals (already sequence-ordered by the
    :class:`repro.nmad.tags.SequenceTracker` before insertion)."""

    _items: deque[UnexpectedItem] = field(default_factory=deque)
    #: peak occupancy in bytes (memory-pressure statistic)
    peak_bytes: int = 0
    _bytes: int = 0

    def add(self, item: UnexpectedItem) -> None:
        self._items.append(item)
        if isinstance(item, UnexpectedEager):
            self._bytes += item.size
            self.peak_bytes = max(self.peak_bytes, self._bytes)

    def match(self, source: int, tag: int, any_marker: int = -1) -> Optional[UnexpectedItem]:
        """Find-and-remove the oldest item compatible with a posted recv."""
        for i, item in enumerate(self._items):
            src_ok = source == any_marker or item.source == source
            tag_ok = tag == any_marker or item.tag == tag
            if src_ok and tag_ok:
                del self._items[i]
                if isinstance(item, UnexpectedEager):
                    self._bytes -= item.size
                return item
        return None

    def probe(self, source: int, tag: int, any_marker: int = -1) -> Optional[ProbeInfo]:
        """Non-destructive :meth:`match`: the probe view of the oldest item
        a ``(source, tag)`` recv would consume, or None. The item stays in
        the store (MPI_Probe semantics)."""
        for item in self._items:
            src_ok = source == any_marker or item.source == source
            tag_ok = tag == any_marker or item.tag == tag
            if src_ok and tag_ok:
                return ProbeInfo.of(item)
        return None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def buffered_bytes(self) -> int:
        return self._bytes

    def require_empty(self) -> None:
        """Diagnostic: raise if messages were never consumed (leak check)."""
        if self._items:
            raise MatchingError(
                f"{len(self._items)} unexpected messages never matched"
            )
