"""Progression engines and the unified completion queue.

:class:`EngineBase` defines the engine interface used by
:class:`repro.nmad.interface.NmInterface`; all engine entry points are
generators executed on the calling Marcel thread (so they can charge CPU
and block).

:class:`SequentialEngine` reproduces the **original non-multithreaded
NewMadeleine** of the paper's evaluation: every communication operation is
processed *sequentially by the communicating thread* (§2: "if the
application performs a non-blocking send, the communication processing …
is done sequentially by the communicating thread"), thread-safety comes
from one **library-wide mutex** (§2.1), and nothing progresses unless an
application thread is inside a library call. Its measured behaviour is
``sum(communication, computation)`` — no overlap.

The multithreaded engine of the paper lives in
:class:`repro.pioman.engine.PiomanEngine`.

:class:`CompletionQueue` is the spine between producers and consumers of
completion events. It has two lanes:

* the **wire lane** — drivers push one :class:`WireCompletion` per
  harvested hardware record (``tx_done``/``rx``); the session core drains
  the lane through its :class:`repro.network.message.PacketKind` dispatch
  table. Its ``depth`` is exported as a gauge through ``repro.obs``.
* the **subscription lane** — the session core publishes a
  :class:`RequestCompletion` for every finished request and the
  reliability layer a :class:`RecoveryCompletion` for every settled wire
  sequence; open :class:`CompletionCursor` subscriptions (``wait_any``,
  the MPI layer's ``waitall``) receive each published record exactly once,
  which is what lets them track *newly completed* requests instead of
  re-scanning their whole request list after every progress pass.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Union

from ..errors import RequestError
from ..marcel.effects import Compute, WaitFlag
from ..marcel.sync import ThreadMutex
from ..marcel.tasklet import TaskletContext
from ..marcel.thread import ThreadContext
from ..network.message import Packet
from .request import NmRequest
from .unexpected import ProbeInfo

if TYPE_CHECKING:  # pragma: no cover - import cycle: core owns the queue
    from .core import NmSession
    from .drivers.base import Driver

__all__ = [
    "WireCompletion",
    "RequestCompletion",
    "RecoveryCompletion",
    "CompletionRecordType",
    "CompletionCursor",
    "CompletionQueue",
    "EngineBase",
    "SequentialEngine",
]


# ---------------------------------------------------------- completion records


@dataclass(frozen=True, slots=True)
class WireCompletion:
    """One hardware completion harvested from a driver's queue.

    ``event`` is ``"tx_done"`` or ``"rx"`` (mirroring
    :class:`repro.network.message.CompletionRecord`); ``time`` is when the
    hardware produced it — dispatch happens later, when software drains
    the wire lane.
    """

    driver: "Driver"
    event: str
    packet: Packet
    time: float


@dataclass(frozen=True, slots=True)
class RequestCompletion:
    """A send/recv request finished (published by the session core)."""

    req: NmRequest
    time: float


@dataclass(frozen=True, slots=True)
class RecoveryCompletion:
    """The reliability layer settled one wire sequence number.

    ``outcome`` is ``"acked"`` (the peer confirmed delivery) or
    ``"gave_up"`` (retries exhausted; the transport abandoned the frame).
    """

    outcome: str
    peer: int
    wire_seq: int
    time: float


CompletionRecordType = Union[RequestCompletion, RecoveryCompletion]


class CompletionCursor:
    """One subscription to the completion queue's published records.

    Each published record is delivered to every open cursor exactly once;
    :meth:`drain` hands the accumulated records over. Close the cursor when
    done (``wait_any`` subscribes per call) or the queue keeps feeding it.

    A cursor may instead be opened in **push mode** by passing a
    ``listener`` callable to :meth:`CompletionQueue.subscribe`: each record
    is then delivered to the listener at publish time and nothing is
    buffered (``drain`` stays empty). Push mode is what lets long-lived
    consumers — the nbc schedule progressor, RMA window servicing — react
    to individual step completions without a polling thread. Listeners run
    in whatever context published the completion and must not block or
    charge CPU; defer real work through the session's op queue.
    """

    __slots__ = ("_queue", "_records", "_listener")

    def __init__(
        self,
        queue: "CompletionQueue",
        listener: Optional[Callable[[CompletionRecordType], None]] = None,
    ) -> None:
        self._queue: Optional[CompletionQueue] = queue
        self._records: deque[CompletionRecordType] = deque()
        self._listener = listener

    def _push(self, rec: CompletionRecordType) -> None:
        if self._listener is not None:
            self._listener(rec)
            return
        self._records.append(rec)

    def pending(self) -> bool:
        """True when records were published since the last drain."""
        return bool(self._records)

    def drain(self) -> list[CompletionRecordType]:
        """All records published since the last drain (may be empty)."""
        out = list(self._records)
        self._records.clear()
        return out

    def close(self) -> None:
        """Detach from the queue; idempotent."""
        queue, self._queue = self._queue, None
        if queue is not None:
            queue._detach(self)
        self._records.clear()


class CompletionQueue:
    """Unified completion queue of one session (see the module docstring).

    Pure bookkeeping: pushing, draining, and publishing consume **zero
    simulated time** — all CPU cost stays with the execution contexts that
    poll drivers and run handlers, so wiring the queue through the hot path
    leaves per-seed traces byte-identical.
    """

    __slots__ = ("_wire", "_cursors", "pushed", "consumed", "published", "peak_depth")

    def __init__(self) -> None:
        self._wire: deque[WireCompletion] = deque()
        self._cursors: list[CompletionCursor] = []
        #: wire-lane records pushed / consumed since construction
        self.pushed = 0
        self.consumed = 0
        #: request/recovery records published to subscribers
        self.published = 0
        #: high-water mark of the wire lane
        self.peak_depth = 0

    # -- wire lane (drivers -> protocol dispatch) ------------------------------

    @property
    def depth(self) -> int:
        """Wire-lane records awaiting dispatch (the ``cq.depth`` gauge)."""
        return len(self._wire)

    def push_wire(self, rec: WireCompletion) -> None:
        self._wire.append(rec)
        self.pushed += 1
        if len(self._wire) > self.peak_depth:
            self.peak_depth = len(self._wire)

    def pop_wire(self) -> Optional[WireCompletion]:
        if not self._wire:
            return None
        self.consumed += 1
        return self._wire.popleft()

    # -- subscription lane (session/reliability -> waiters) --------------------

    def subscribe(
        self, listener: Optional[Callable[[CompletionRecordType], None]] = None
    ) -> CompletionCursor:
        """Open a cursor; with ``listener`` the cursor runs in push mode
        (records delivered at publish time, nothing buffered)."""
        cursor = CompletionCursor(self, listener)
        self._cursors.append(cursor)
        return cursor

    def _detach(self, cursor: CompletionCursor) -> None:
        try:
            self._cursors.remove(cursor)
        except ValueError:
            pass

    def publish(self, rec: CompletionRecordType) -> None:
        self.published += 1
        for cursor in self._cursors:
            cursor._push(rec)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Flat counters for the ``n{i}.cq.*`` observability lane."""
        return {
            "depth": self.depth,
            "peak_depth": self.peak_depth,
            "pushed": self.pushed,
            "consumed": self.consumed,
            "published": self.published,
            "cursors": len(self._cursors),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CompletionQueue depth={self.depth} pushed={self.pushed} "
            f"published={self.published} cursors={len(self._cursors)}>"
        )


# ------------------------------------------------------------------ engines


class EngineBase:
    """Engine interface: isend/irecv/wait as thread generators."""

    name = "base"

    def __init__(self, session: "NmSession") -> None:
        self.session = session
        self.sim = session.sim
        self.timing = session.timing

    # -- helpers ---------------------------------------------------------------

    def _exec_ctx(self, tctx: ThreadContext) -> TaskletContext:
        """Execution context for inline progression on the calling thread."""
        return TaskletContext(self.sim, tctx.thread.core_index, self.sim.now)

    @staticmethod
    def _service(ctx: TaskletContext, label: str) -> Compute:
        return Compute(ctx.cpu_us, kind="service", label=label)

    @staticmethod
    def _remove_hook(hooks: list[Callable[..., Any]], cb: Callable[..., Any]) -> None:
        """Remove ``cb`` from a hook list; idempotent."""
        try:
            hooks.remove(cb)
        except ValueError:
            pass

    def close(self) -> None:
        """Detach every session/scheduler hook this engine registered.

        Engines can be rebuilt on a live session (harness reuse, engine
        comparison runs); without deregistration the stale engine keeps
        reacting to session events — duplicate idle kicks, double polling,
        double statistics. The base engine registers nothing, so this is a
        no-op here; subclasses override and must stay idempotent.
        """

    # -- engine API --------------------------------------------------------------

    def isend(
        self,
        tctx: ThreadContext,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        raise NotImplementedError
        yield  # pragma: no cover

    def irecv(
        self,
        tctx: ThreadContext,
        source: int,
        tag: int,
        size: int,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        raise NotImplementedError
        yield  # pragma: no cover

    def wait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        raise NotImplementedError
        yield  # pragma: no cover

    #: trace label charged for the default inline-progression service time
    step_label = "nm.step"

    def _progress_max_ops(self) -> "int | None":
        """Events-per-pass cap for :meth:`_progress_step`; None = no cap."""
        return None

    def _progress_step(self, tctx: ThreadContext) -> Generator[Any, Any, bool]:
        """One inline progression pass; True if work ran.

        Default behaviour (used as-is by :class:`PiomanEngine`, which only
        customises :attr:`step_label` and :meth:`_progress_max_ops`): skip
        quickly when the session is quiet, otherwise take the per-event
        locks — charged as one spinlock acquisition — and run up to
        ``_progress_max_ops()`` events. :class:`SequentialEngine` overrides
        this wholesale with its big-lock variant, which always polls (and
        pays) even when no work is queued.
        """
        if not self.session.has_work():
            return False
        ctx = self._exec_ctx(tctx)
        ctx.charge(self.timing.host.spinlock_us)
        did = self.session.progress(ctx, max_ops=self._progress_max_ops())
        if ctx.cpu_us > 0:
            yield self._service(ctx, self.step_label)
        return did

    # -- shared multi-request / probing operations ---------------------------------

    def wait_any(
        self, tctx: ThreadContext, reqs: list[NmRequest]
    ) -> Generator[Any, Any, tuple[int, NmRequest]]:
        """Block until at least one request completes; returns (index, req).

        Works identically for both engines: inline progression while there
        is work, then sleep on the session activity flag (every completion
        sets it).

        Completion tracking rides a :class:`CompletionCursor`: one upfront
        scan records requests that were already done, after which each
        progress pass only inspects *newly published* completions — O(n +
        completions) request inspections per call instead of the old
        O(n × passes) full rescan. Among simultaneously completed requests
        the lowest index wins, exactly as the rescan behaved.
        """
        if not reqs:
            raise RequestError("wait_any needs at least one request")
        flag = self.session.activity_flag
        index_of: dict[int, int] = {}
        for i, req in enumerate(reqs):
            index_of.setdefault(id(req), i)
        cursor = self.session.cq.subscribe()
        try:
            done_idx = {i for i, req in enumerate(reqs) if req.done}

            def note_new_completions() -> None:
                for rec in cursor.drain():
                    if isinstance(rec, RequestCompletion):
                        idx = index_of.get(id(rec.req))
                        if idx is not None:
                            done_idx.add(idx)

            while True:
                note_new_completions()
                if done_idx:
                    i = min(done_idx)
                    return i, reqs[i]
                did = yield from self._progress_step(tctx)
                if did:
                    continue
                flag.clear()
                # completions can land while the pass yields (lock waits,
                # service charges): pick them up before deciding to sleep
                note_new_completions()
                if self.session.has_work() or done_idx:
                    continue
                yield WaitFlag(flag)
        finally:
            cursor.close()

    def drain(self, tctx: ThreadContext) -> Generator[Any, Any, None]:
        """Quiesce the session: progress until no local work is queued and
        the recovery layer (if on) holds no unacknowledged packets — the
        MPI_Finalize contract. Thread bodies on a faulty fabric should end
        with this, or their node stops retransmitting/acknowledging the
        moment the thread exits and peers are left to the give-up path.
        """
        rel = self.session.reliability
        flag = self.session.activity_flag
        while self.session.has_work() or (rel is not None and rel.pending_count() > 0):
            did = yield from self._progress_step(tctx)
            if did:
                continue
            flag.clear()
            if self.session.has_work():
                continue
            if rel is None or rel.pending_count() == 0:
                break
            # unacked packets but a quiet wire: sleep until an ACK arrives
            # or a retransmit timer queues work (both set the flag)
            yield WaitFlag(flag)

    def iprobe(
        self, tctx: ThreadContext, source: int, tag: int
    ) -> Generator[Any, Any, "ProbeInfo | None"]:
        """Non-blocking probe: one progression step, then check the
        unexpected store. Returns a :class:`ProbeInfo` or None."""
        yield from self._progress_step(tctx)
        return self.session.probe_unexpected(source, tag)

    def probe(
        self, tctx: ThreadContext, source: int, tag: int
    ) -> Generator[Any, Any, "ProbeInfo"]:
        """Blocking probe: progress/sleep until a matching message is
        pending (MPI_Probe)."""
        flag = self.session.activity_flag
        while True:
            found = self.session.probe_unexpected(source, tag)
            if found is not None:
                return found
            did = yield from self._progress_step(tctx)
            if did:
                continue
            flag.clear()
            if self.session.has_work():
                continue
            found = self.session.probe_unexpected(source, tag)
            if found is not None:
                return found
            yield WaitFlag(flag)


class SequentialEngine(EngineBase):
    """The non-multithreaded baseline NewMadeleine."""

    name = "sequential"

    def __init__(self, session: "NmSession") -> None:
        super().__init__(session)
        #: §2.1: "a library-wide scope mutex" is how classical MPI
        #: implementations achieve thread-safety
        self.big_lock = ThreadMutex(session.scheduler, name=f"n{session.node_index}.nm.biglock")

    # -- inline progression -------------------------------------------------------

    def _drain_ops_inline(self, tctx: ThreadContext) -> Generator[Any, Any, None]:
        """Run every queued op *now*, on the calling thread, charging it.

        This is the paper's baseline behaviour: "the packet is actually
        submitted to the network by the application thread itself. Thus
        even a non-blocking send may take several dozens of microseconds
        to return."
        """
        while self.session.has_pending_ops():
            ctx = self._exec_ctx(tctx)
            self.session.progress(ctx, poll=False)
            if ctx.cpu_us > 0:
                yield self._service(ctx, "nm.inline")

    def _progress_step(self, tctx: ThreadContext) -> Generator[Any, Any, bool]:
        """One locked progression pass on the calling thread."""
        yield from self.big_lock.acquire()
        try:
            ctx = self._exec_ctx(tctx)
            did = self.session.progress(ctx)
            if ctx.cpu_us > 0:
                yield self._service(ctx, "nm.step")
        finally:
            self.big_lock.release()
        return did

    # -- API ----------------------------------------------------------------------

    def isend(
        self,
        tctx: ThreadContext,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        yield from self.big_lock.acquire()
        try:
            yield Compute(self.timing.host.request_post_us, kind="service", label="post_send")
            req = self.session.make_send(
                peer, tag, size, payload, buffer_id, producer_core=tctx.thread.core_index
            )
            self.session.post_send(req)
            yield from self._drain_ops_inline(tctx)
        finally:
            self.big_lock.release()
        return req

    def irecv(
        self,
        tctx: ThreadContext,
        source: int,
        tag: int,
        size: int,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        yield from self.big_lock.acquire()
        try:
            yield Compute(self.timing.host.request_post_us, kind="service", label="post_recv")
            req = self.session.make_recv(source, tag, size, buffer_id)
            self.session.post_recv(req)
            yield from self._drain_ops_inline(tctx)
        finally:
            self.big_lock.release()
        return req

    def wait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        """Poll-and-block loop on the application thread.

        Progress is driven exclusively here (and in isend/irecv): if the
        wire is quiet the thread blocks on the session activity flag —
        functionally equivalent to the baseline's busy-poll inside the
        wait, but without flooding the event queue.
        """
        flag = self.session.activity_flag
        while not req.done:
            yield from self.big_lock.acquire()
            try:
                ctx = self._exec_ctx(tctx)
                self.session.progress(ctx)
                if ctx.cpu_us > 0:
                    yield self._service(ctx, "nm.wait")
            finally:
                self.big_lock.release()
            if req.done:
                break
            if self.session.has_work():
                continue
            flag.clear()
            if self.session.has_work() or req.done:
                continue
            yield WaitFlag(flag)
        return req
