"""Progression engines: who makes communication advance, and when.

:class:`EngineBase` defines the engine interface used by
:class:`repro.nmad.interface.NmInterface`; all engine entry points are
generators executed on the calling Marcel thread (so they can charge CPU
and block).

:class:`SequentialEngine` reproduces the **original non-multithreaded
NewMadeleine** of the paper's evaluation: every communication operation is
processed *sequentially by the communicating thread* (§2: "if the
application performs a non-blocking send, the communication processing …
is done sequentially by the communicating thread"), thread-safety comes
from one **library-wide mutex** (§2.1), and nothing progresses unless an
application thread is inside a library call. Its measured behaviour is
``sum(communication, computation)`` — no overlap.

The multithreaded engine of the paper lives in
:class:`repro.pioman.engine.PiomanEngine`.
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import RequestError
from ..marcel.effects import Compute, WaitFlag
from ..marcel.sync import ThreadMutex
from ..marcel.tasklet import TaskletContext
from ..marcel.thread import ThreadContext
from .core import NmSession
from .request import NmRequest
from .unexpected import ProbeInfo

__all__ = ["EngineBase", "SequentialEngine"]


class EngineBase:
    """Engine interface: isend/irecv/wait as thread generators."""

    name = "base"

    def __init__(self, session: NmSession) -> None:
        self.session = session
        self.sim = session.sim
        self.timing = session.timing

    # -- helpers ---------------------------------------------------------------

    def _exec_ctx(self, tctx: ThreadContext) -> TaskletContext:
        """Execution context for inline progression on the calling thread."""
        return TaskletContext(self.sim, tctx.thread.core_index, self.sim.now)

    @staticmethod
    def _service(ctx: TaskletContext, label: str) -> Compute:
        return Compute(ctx.cpu_us, kind="service", label=label)

    @staticmethod
    def _remove_hook(hooks: list, cb) -> None:
        """Remove ``cb`` from a hook list; idempotent."""
        try:
            hooks.remove(cb)
        except ValueError:
            pass

    def close(self) -> None:
        """Detach every session/scheduler hook this engine registered.

        Engines can be rebuilt on a live session (harness reuse, engine
        comparison runs); without deregistration the stale engine keeps
        reacting to session events — duplicate idle kicks, double polling,
        double statistics. The base engine registers nothing, so this is a
        no-op here; subclasses override and must stay idempotent.
        """

    # -- engine API --------------------------------------------------------------

    def isend(
        self,
        tctx: ThreadContext,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        raise NotImplementedError
        yield  # pragma: no cover

    def irecv(
        self,
        tctx: ThreadContext,
        source: int,
        tag: int,
        size: int,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        raise NotImplementedError
        yield  # pragma: no cover

    def wait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        raise NotImplementedError
        yield  # pragma: no cover

    #: trace label charged for the default inline-progression service time
    step_label = "nm.step"

    def _progress_max_ops(self) -> "int | None":
        """Events-per-pass cap for :meth:`_progress_step`; None = no cap."""
        return None

    def _progress_step(self, tctx: ThreadContext) -> Generator[Any, Any, bool]:
        """One inline progression pass; True if work ran.

        Default behaviour (used as-is by :class:`PiomanEngine`, which only
        customises :attr:`step_label` and :meth:`_progress_max_ops`): skip
        quickly when the session is quiet, otherwise take the per-event
        locks — charged as one spinlock acquisition — and run up to
        ``_progress_max_ops()`` events. :class:`SequentialEngine` overrides
        this wholesale with its big-lock variant, which always polls (and
        pays) even when no work is queued.
        """
        if not self.session.has_work():
            return False
        ctx = self._exec_ctx(tctx)
        ctx.charge(self.timing.host.spinlock_us)
        did = self.session.progress(ctx, max_ops=self._progress_max_ops())
        if ctx.cpu_us > 0:
            yield self._service(ctx, self.step_label)
        return did

    # -- shared multi-request / probing operations ---------------------------------

    def wait_any(
        self, tctx: ThreadContext, reqs: list[NmRequest]
    ) -> Generator[Any, Any, tuple[int, NmRequest]]:
        """Block until at least one request completes; returns (index, req).

        Works identically for both engines: inline progression while there
        is work, then sleep on the session activity flag (every completion
        sets it).
        """
        if not reqs:
            raise RequestError("wait_any needs at least one request")
        flag = self.session.activity_flag
        while True:
            for i, req in enumerate(reqs):
                if req.done:
                    return i, req
            did = yield from self._progress_step(tctx)
            if did:
                continue
            flag.clear()
            if self.session.has_work() or any(r.done for r in reqs):
                continue
            yield WaitFlag(flag)

    def drain(self, tctx: ThreadContext) -> Generator[Any, Any, None]:
        """Quiesce the session: progress until no local work is queued and
        the recovery layer (if on) holds no unacknowledged packets — the
        MPI_Finalize contract. Thread bodies on a faulty fabric should end
        with this, or their node stops retransmitting/acknowledging the
        moment the thread exits and peers are left to the give-up path.
        """
        rel = self.session.reliability
        flag = self.session.activity_flag
        while self.session.has_work() or (rel is not None and rel.pending_count() > 0):
            did = yield from self._progress_step(tctx)
            if did:
                continue
            flag.clear()
            if self.session.has_work():
                continue
            if rel is None or rel.pending_count() == 0:
                break
            # unacked packets but a quiet wire: sleep until an ACK arrives
            # or a retransmit timer queues work (both set the flag)
            yield WaitFlag(flag)

    def iprobe(
        self, tctx: ThreadContext, source: int, tag: int
    ) -> Generator[Any, Any, "ProbeInfo | None"]:
        """Non-blocking probe: one progression step, then check the
        unexpected store. Returns a :class:`ProbeInfo` or None."""
        yield from self._progress_step(tctx)
        return self.session.probe_unexpected(source, tag)

    def probe(
        self, tctx: ThreadContext, source: int, tag: int
    ) -> Generator[Any, Any, "ProbeInfo"]:
        """Blocking probe: progress/sleep until a matching message is
        pending (MPI_Probe)."""
        flag = self.session.activity_flag
        while True:
            found = self.session.probe_unexpected(source, tag)
            if found is not None:
                return found
            did = yield from self._progress_step(tctx)
            if did:
                continue
            flag.clear()
            if self.session.has_work():
                continue
            found = self.session.probe_unexpected(source, tag)
            if found is not None:
                return found
            yield WaitFlag(flag)


class SequentialEngine(EngineBase):
    """The non-multithreaded baseline NewMadeleine."""

    name = "sequential"

    def __init__(self, session: NmSession) -> None:
        super().__init__(session)
        #: §2.1: "a library-wide scope mutex" is how classical MPI
        #: implementations achieve thread-safety
        self.big_lock = ThreadMutex(session.scheduler, name=f"n{session.node_index}.nm.biglock")

    # -- inline progression -------------------------------------------------------

    def _drain_ops_inline(self, tctx: ThreadContext) -> Generator[Any, Any, None]:
        """Run every queued op *now*, on the calling thread, charging it.

        This is the paper's baseline behaviour: "the packet is actually
        submitted to the network by the application thread itself. Thus
        even a non-blocking send may take several dozens of microseconds
        to return."
        """
        while self.session.has_pending_ops():
            ctx = self._exec_ctx(tctx)
            self.session.progress(ctx, poll=False)
            if ctx.cpu_us > 0:
                yield self._service(ctx, "nm.inline")

    def _progress_step(self, tctx: ThreadContext) -> Generator[Any, Any, bool]:
        """One locked progression pass on the calling thread."""
        yield from self.big_lock.acquire()
        try:
            ctx = self._exec_ctx(tctx)
            did = self.session.progress(ctx)
            if ctx.cpu_us > 0:
                yield self._service(ctx, "nm.step")
        finally:
            self.big_lock.release()
        return did

    # -- API ----------------------------------------------------------------------

    def isend(self, tctx, peer, tag, size, payload=None, buffer_id=None):
        yield from self.big_lock.acquire()
        try:
            yield Compute(self.timing.host.request_post_us, kind="service", label="post_send")
            req = self.session.make_send(
                peer, tag, size, payload, buffer_id, producer_core=tctx.thread.core_index
            )
            self.session.post_send(req)
            yield from self._drain_ops_inline(tctx)
        finally:
            self.big_lock.release()
        return req

    def irecv(self, tctx, source, tag, size, buffer_id=None):
        yield from self.big_lock.acquire()
        try:
            yield Compute(self.timing.host.request_post_us, kind="service", label="post_recv")
            req = self.session.make_recv(source, tag, size, buffer_id)
            self.session.post_recv(req)
            yield from self._drain_ops_inline(tctx)
        finally:
            self.big_lock.release()
        return req

    def wait(self, tctx, req):
        """Poll-and-block loop on the application thread.

        Progress is driven exclusively here (and in isend/irecv): if the
        wire is quiet the thread blocks on the session activity flag —
        functionally equivalent to the baseline's busy-poll inside the
        wait, but without flooding the event queue.
        """
        flag = self.session.activity_flag
        while not req.done:
            yield from self.big_lock.acquire()
            try:
                ctx = self._exec_ctx(tctx)
                self.session.progress(ctx)
                if ctx.cpu_us > 0:
                    yield self._service(ctx, "nm.wait")
            finally:
                self.big_lock.release()
            if req.done:
                break
            if self.session.has_work():
                continue
            flag.clear()
            if self.session.has_work() or req.done:
                continue
            yield WaitFlag(flag)
        return req
