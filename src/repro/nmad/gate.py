"""Gates: per-peer connection state (rails, send sequencing, flush queue).

A gate bundles the rails (drivers) that reach one peer with the optimizer
strategy that turns pending sends into wire packets (§3.1). It is pure
bookkeeping — protocol decisions happen in :mod:`repro.nmad.core` and the
protocol engine modules, which consult :meth:`Gate.effective_thresholds`
and drain :attr:`Gate.pending_plans`.
"""

from __future__ import annotations

from collections import deque

from ..errors import ProtocolError
from .drivers.base import Driver
from .strategies import DefaultStrategy, Strategy
from .strategies.base import PacketPlan, RailInfo

__all__ = ["Gate"]


class Gate:
    """Connection from this session to one peer node."""

    def __init__(self, peer: int, rails: list[Driver], strategy: Strategy | None = None) -> None:
        if not rails:
            raise ProtocolError(f"gate to n{peer} needs at least one rail")
        self.peer = peer
        self.rails = rails
        self.strategy = strategy or DefaultStrategy()
        self._send_seq: dict[int, int] = {}
        #: True while a flush op for this gate sits in the session work list
        self.flush_pending = False
        #: packet plans already formed by the strategy, awaiting submission
        #: (one wire packet is submitted per flush-op execution — §2.1:
        #: "the messages are submitted once at a time")
        self.pending_plans: deque[PacketPlan] = deque()
        self._rail_infos: list[RailInfo] | None = None

    def next_seq(self, tag: int) -> int:
        seq = self._send_seq.get(tag, 0)
        self._send_seq[tag] = seq + 1
        return seq

    def rail_infos(self) -> list[RailInfo]:
        # rails are fixed at construction and the model values behind the
        # thresholds/bandwidth are static, so build the descriptors once —
        # this sits on the per-send hot path
        infos = self._rail_infos
        if infos is None:
            infos = self._rail_infos = [
                RailInfo(
                    index=i,
                    pio_threshold=r.pio_threshold(),
                    rdv_threshold=r.rdv_threshold(),
                    bandwidth=r.wire_bandwidth(),
                    chunk_hint=r.rdv_chunk_bytes(),
                )
                for i, r in enumerate(self.rails)
            ]
        return infos

    def effective_thresholds(self, infos: list[RailInfo] | None = None) -> tuple[int, int]:
        """Gate-wide protocol thresholds: the (pio, rdv) cutoffs that are
        safe on *every* given rail.

        Protocol choice happens before rail choice — reliability rerouting
        or RDV striping may carry the message on any rail — so the session
        picks the protocol a message qualifies for on all of them (the
        minimum of each threshold). Identical to ``rails[0]`` for
        single-rail and homogeneous gates.
        """
        if infos is None:
            infos = self.rail_infos()
        return (
            min(r.pio_threshold for r in infos),
            min(r.rdv_threshold for r in infos),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Gate ->n{self.peer} rails={[r.name for r in self.rails]}>"
