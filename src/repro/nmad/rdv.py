"""Rendezvous data-phase planner: pipeline chunking + multirail striping.

The paper's §2.3 ships the rendezvous payload as one zero-copy DATA
transfer on one rail once the CTS arrives. This module plans a *pipelined*
data phase instead:

* the payload is first **striped** across the gate's healthy rails
  proportionally to rail bandwidth (the same arithmetic
  :func:`repro.nmad.strategies.base.stripe_by_bandwidth` applies to large
  eager sends), then
* each rail's share is cut into **pipeline chunks** — either a fixed
  ``RdvConfig.chunk_bytes``, or (adaptive mode) whatever that rail drains
  in ``adaptive_chunk_us``, so registration of chunk *k+1* overlaps the
  DMA drain of chunk *k* on every rail.

The planner is pure: it maps ``(size, rails)`` to a chunk list and never
touches the simulator, so it is deterministic by construction. The payload
codec below handles byte-identical reconstruction of real ``bytes``/numpy
payloads on the receive side; anything else rides chunk 0 whole ("opaque").
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..config import RdvConfig
from ..errors import ProtocolError
from .strategies.base import RailInfo, stripe_by_bandwidth

__all__ = [
    "RdvChunk",
    "RdvPlanner",
    "classify_payload",
    "slice_raw",
    "PayloadAssembler",
]


@dataclass(frozen=True)
class RdvChunk:
    """One planned DATA packet of a rendezvous data phase."""

    index: int
    offset: int
    length: int
    rail_index: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise ProtocolError(f"invalid RDV chunk geometry {self.offset}+{self.length}")


class RdvPlanner:
    """Maps a rendezvous payload onto chunks and rails."""

    def __init__(self, config: RdvConfig) -> None:
        self.config = config

    def plan(self, size: int, rails: Sequence[RailInfo]) -> list[RdvChunk]:
        """Plan the DATA packets for a ``size``-byte payload over ``rails``.

        With chunking off (the default config) the whole payload is one
        chunk on the first rail — the seed's single-DATA behaviour. With
        chunking on, the payload is striped across rails by bandwidth and
        each share is subdivided into pipeline chunks.
        """
        if not rails:
            raise ProtocolError("RDV plan needs at least one rail")
        if size <= 0:
            raise ProtocolError(f"RDV plan needs a positive payload size, got {size}")
        cfg = self.config
        if not cfg.enabled:
            return [RdvChunk(0, 0, size, rails[0].index)]
        use_rails = list(rails) if (cfg.multirail and len(rails) > 1) else [rails[0]]
        shares = stripe_by_bandwidth(size, use_rails)
        chunks: list[RdvChunk] = []
        offset = 0
        index = 0
        for rail, share in zip(use_rails, shares):
            if share <= 0:
                continue
            csize = self._chunk_size(rail, share)
            for chunk_off in range(0, share, csize):
                length = min(csize, share - chunk_off)
                chunks.append(RdvChunk(index, offset + chunk_off, length, rail.index))
                index += 1
            offset += share
        return chunks

    def _chunk_size(self, rail: RailInfo, share: int) -> int:
        cfg = self.config
        if cfg.adaptive:
            # the driver's own pipeline hint wins; otherwise size the chunk
            # so one DMA drain takes ~adaptive_chunk_us on this rail
            csize = rail.chunk_hint or int(rail.bandwidth * cfg.adaptive_chunk_us)
        else:
            csize = cfg.chunk_bytes
        csize = max(csize, cfg.min_chunk_bytes)
        # bound op-queue growth: never more than max_chunks_per_rail chunks
        csize = max(csize, math.ceil(share / cfg.max_chunks_per_rail))
        return csize


# --------------------------------------------------------------- payload codec


def classify_payload(payload: Any, size: int) -> tuple[str, Any, Optional[dict]]:
    """Classify a send payload for chunked transport.

    Returns ``(mode, raw, meta)``:

    * ``("none", None, None)`` — no payload attached;
    * ``("bytes", raw, None)`` — bytes-like of exactly ``size`` bytes,
      sliceable per chunk and reassembled byte-identical;
    * ``("ndarray", raw, meta)`` — numpy array whose buffer is exactly
      ``size`` bytes; ``raw`` is its byte image, ``meta`` carries
      dtype/shape for reconstruction;
    * ``("opaque", payload, None)`` — anything else (or a length mismatch):
      the object rides chunk 0 whole, as the eager reassembly does.
    """
    if payload is None:
        return "none", None, None
    if isinstance(payload, (bytes, bytearray, memoryview)):
        raw = bytes(payload)
        if len(raw) == size:
            return "bytes", raw, None
        return "opaque", payload, None
    np = sys.modules.get("numpy")
    if np is not None and isinstance(payload, np.ndarray):
        if payload.nbytes == size:
            meta = {"dtype": str(payload.dtype), "shape": tuple(payload.shape)}
            return "ndarray", payload.tobytes(), meta
        return "opaque", payload, None
    return "opaque", payload, None


def slice_raw(mode: str, raw: Any, offset: int, length: int, chunk_index: int) -> Any:
    """The per-chunk wire payload for a classified send payload."""
    if mode in ("bytes", "ndarray"):
        return raw[offset : offset + length]
    if mode == "opaque":
        return raw if chunk_index == 0 else None
    return None


class PayloadAssembler:
    """Receiver-side accumulator for one chunked rendezvous transfer."""

    def __init__(self, size: int, nchunks: int) -> None:
        self.size = size
        self.nchunks = nchunks
        self.received = 0
        self.chunks_seen = 0
        self._seen_offsets: set[int] = set()
        self._buf = bytearray(size)
        self._mode: Optional[str] = None
        self._meta: Optional[dict] = None
        self._opaque: Any = None

    def add(self, headers: dict) -> bool:
        """Fold one DATA chunk in; True once every chunk has landed."""
        offset = headers["offset"]
        length = headers["length"]
        if offset in self._seen_offsets:
            return False  # duplicate delivery of a retransmitted chunk
        self._seen_offsets.add(offset)
        self.received += length
        self.chunks_seen += 1
        if self.received > self.size:
            raise ProtocolError(
                f"RDV reassembly overflow: {self.received} > {self.size}"
            )
        mode = headers.get("payload_mode", "none")
        if self._mode is None or self._mode == "none":
            self._mode = mode
        if headers.get("payload_meta") is not None:
            self._meta = headers["payload_meta"]
        data = headers.get("payload")
        if mode in ("bytes", "ndarray") and data is not None:
            self._buf[offset : offset + length] = data
        elif mode == "opaque" and headers.get("chunk_index", 0) == 0:
            self._opaque = data
        return self.chunks_seen >= self.nchunks

    def payload(self) -> Any:
        """Reconstruct the application payload (byte-identical for
        bytes/numpy sends)."""
        if self._mode == "bytes":
            return bytes(self._buf)
        if self._mode == "ndarray":
            np = sys.modules.get("numpy")
            if np is None:  # pragma: no cover - meta only exists with numpy
                return bytes(self._buf)
            meta = self._meta or {}
            arr = np.frombuffer(bytes(self._buf), dtype=meta.get("dtype", "u1"))
            shape = meta.get("shape")
            if shape is not None:
                arr = arr.reshape(shape)
            return arr.copy()
        if self._mode == "opaque":
            return self._opaque
        return None
