"""Rendezvous protocol engine: RTS/CTS handshake, pipelined data phase.

The paper's §2.3 ships the rendezvous payload as one zero-copy DATA
transfer on one rail once the CTS arrives. This module holds the whole
rendezvous protocol:

* :class:`RdvEngine` — the handler module registered against the
  :class:`repro.nmad.core.SessionCore` dispatch tables: RTS emission and
  answering, CTS handling, the DATA phase (whole or pipelined), and the
  receiver-side rendezvous request/assembly state;
* :class:`RdvPlanner` — plans a *pipelined* data phase: the payload is
  first **striped** across the gate's healthy rails proportionally to rail
  bandwidth (the same arithmetic
  :func:`repro.nmad.strategies.base.stripe_by_bandwidth` applies to large
  eager sends), then each rail's share is cut into **pipeline chunks** —
  either a fixed ``RdvConfig.chunk_bytes``, or (adaptive mode) whatever
  that rail drains in ``adaptive_chunk_us``, so registration of chunk
  *k+1* overlaps the DMA drain of chunk *k* on every rail.

The planner is pure: it maps ``(size, rails)`` to a chunk list and never
touches the simulator, so it is deterministic by construction. The payload
codec below handles byte-identical reconstruction of real ``bytes``/numpy
payloads on the receive side; anything else rides chunk 0 whole ("opaque").
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..config import RdvConfig
from ..errors import ProtocolError
from ..network.message import Packet, PacketKind
from .drivers.base import Driver, ExecContext
from .request import NmRequest, Protocol, ReqState
from .strategies.base import RailInfo, stripe_by_bandwidth
from .unexpected import UnexpectedRts
from .wire import CtsFrame, DataChunkFrame, NdarrayMeta, RtsFrame, data_frame, from_packet

if TYPE_CHECKING:  # pragma: no cover - engines are owned by the session
    from .core import SessionCore

__all__ = [
    "RDV_STAT_KEYS",
    "RdvChunk",
    "RdvPlanner",
    "RdvEngine",
    "classify_payload",
    "slice_raw",
    "PayloadAssembler",
]

#: rendezvous data-phase session counters (surfaced as ``n{i}.rdv.*``
#: through the observability registry — see ``harness/runner.py``)
RDV_STAT_KEYS = (
    "rdv_chunks_sent",
    "rdv_chunks_received",
    "rdv_chunked_sends",
    "rdv_striped_sends",
    "rdv_chunk_retransmits",
)


@dataclass(frozen=True)
class RdvChunk:
    """One planned DATA packet of a rendezvous data phase."""

    index: int
    offset: int
    length: int
    rail_index: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise ProtocolError(f"invalid RDV chunk geometry {self.offset}+{self.length}")


class RdvPlanner:
    """Maps a rendezvous payload onto chunks and rails."""

    def __init__(self, config: RdvConfig) -> None:
        self.config = config

    def plan(self, size: int, rails: Sequence[RailInfo]) -> list[RdvChunk]:
        """Plan the DATA packets for a ``size``-byte payload over ``rails``.

        With chunking off (the default config) the whole payload is one
        chunk on the first rail — the seed's single-DATA behaviour. With
        chunking on, the payload is striped across rails by bandwidth and
        each share is subdivided into pipeline chunks.
        """
        if not rails:
            raise ProtocolError("RDV plan needs at least one rail")
        if size <= 0:
            raise ProtocolError(f"RDV plan needs a positive payload size, got {size}")
        cfg = self.config
        if not cfg.enabled:
            return [RdvChunk(0, 0, size, rails[0].index)]
        use_rails = list(rails) if (cfg.multirail and len(rails) > 1) else [rails[0]]
        shares = stripe_by_bandwidth(size, use_rails)
        chunks: list[RdvChunk] = []
        offset = 0
        index = 0
        for rail, share in zip(use_rails, shares):
            if share <= 0:
                continue
            csize = self._chunk_size(rail, share)
            for chunk_off in range(0, share, csize):
                length = min(csize, share - chunk_off)
                chunks.append(RdvChunk(index, offset + chunk_off, length, rail.index))
                index += 1
            offset += share
        return chunks

    def _chunk_size(self, rail: RailInfo, share: int) -> int:
        cfg = self.config
        if cfg.adaptive:
            # the driver's own pipeline hint wins; otherwise size the chunk
            # so one DMA drain takes ~adaptive_chunk_us on this rail
            csize = rail.chunk_hint or int(rail.bandwidth * cfg.adaptive_chunk_us)
        else:
            csize = cfg.chunk_bytes
        csize = max(csize, cfg.min_chunk_bytes)
        # bound op-queue growth: never more than max_chunks_per_rail chunks
        csize = max(csize, math.ceil(share / cfg.max_chunks_per_rail))
        return csize


# --------------------------------------------------------------- payload codec


def classify_payload(payload: Any, size: int) -> tuple[str, Any, Optional[NdarrayMeta]]:
    """Classify a send payload for chunked transport.

    Returns ``(mode, raw, meta)``:

    * ``("none", None, None)`` — no payload attached;
    * ``("bytes", raw, None)`` — bytes-like of exactly ``size`` bytes,
      sliceable per chunk and reassembled byte-identical;
    * ``("ndarray", raw, meta)`` — numpy array whose buffer is exactly
      ``size`` bytes; ``raw`` is its byte image, ``meta`` is the
      :class:`repro.nmad.wire.NdarrayMeta` (dtype/shape) for
      reconstruction;
    * ``("opaque", payload, None)`` — anything else (or a length mismatch):
      the object rides chunk 0 whole, as the eager reassembly does.
    """
    if payload is None:
        return "none", None, None
    if isinstance(payload, (bytes, bytearray, memoryview)):
        raw = bytes(payload)
        if len(raw) == size:
            return "bytes", raw, None
        return "opaque", payload, None
    np = sys.modules.get("numpy")
    if np is not None and isinstance(payload, np.ndarray):
        if payload.nbytes == size:
            meta = NdarrayMeta(dtype=str(payload.dtype), shape=tuple(payload.shape))
            return "ndarray", payload.tobytes(), meta
        return "opaque", payload, None
    return "opaque", payload, None


def slice_raw(mode: str, raw: Any, offset: int, length: int, chunk_index: int) -> Any:
    """The per-chunk wire payload for a classified send payload."""
    if mode in ("bytes", "ndarray"):
        return raw[offset : offset + length]
    if mode == "opaque":
        return raw if chunk_index == 0 else None
    return None


class PayloadAssembler:
    """Receiver-side accumulator for one chunked rendezvous transfer."""

    def __init__(self, size: int, nchunks: int) -> None:
        self.size = size
        self.nchunks = nchunks
        self.received = 0
        self.chunks_seen = 0
        self._seen_offsets: set[int] = set()
        self._buf = bytearray(size)
        self._mode: Optional[str] = None
        self._meta: Optional[NdarrayMeta] = None
        self._opaque: Any = None

    def add(self, frame: DataChunkFrame) -> bool:
        """Fold one DATA chunk frame in; True once every chunk has landed."""
        if frame.offset in self._seen_offsets:
            return False  # duplicate delivery of a retransmitted chunk
        self._seen_offsets.add(frame.offset)
        self.received += frame.length
        self.chunks_seen += 1
        if self.received > self.size:
            raise ProtocolError(
                f"RDV reassembly overflow: {self.received} > {self.size}"
            )
        if self._mode is None or self._mode == "none":
            self._mode = frame.mode
        if frame.meta is not None:
            self._meta = frame.meta
        if frame.mode in ("bytes", "ndarray") and frame.payload is not None:
            self._buf[frame.offset : frame.offset + frame.length] = frame.payload
        elif frame.mode == "opaque" and frame.chunk_index == 0:
            self._opaque = frame.payload
        return self.chunks_seen >= self.nchunks

    def payload(self) -> Any:
        """Reconstruct the application payload (byte-identical for
        bytes/numpy sends)."""
        if self._mode == "bytes":
            return bytes(self._buf)
        if self._mode == "ndarray":
            np = sys.modules.get("numpy")
            if np is None:  # pragma: no cover - meta only exists with numpy
                return bytes(self._buf)
            meta = self._meta
            arr = np.frombuffer(bytes(self._buf), dtype=meta.dtype if meta else "u1")
            if meta is not None:
                arr = arr.reshape(meta.shape)
            return arr.copy()
        if self._mode == "opaque":
            return self._opaque
        return None


# -------------------------------------------------------------- protocol engine


class RdvEngine:
    """Protocol engine for the RTS/CTS/DATA rendezvous state machine."""

    def __init__(self, session: "SessionCore") -> None:
        self.session = session
        #: rendezvous receives waiting for DATA, by recv req_id
        self._recvs: dict[int, NmRequest] = {}
        #: chunked rendezvous reassembly state, by recv req_id
        self._assembly: dict[int, PayloadAssembler] = {}
        #: rendezvous data-phase chunk/stripe planner
        self.planner = RdvPlanner(session.timing.rdv)
        session.register_send_path(Protocol.RDV, self.start_send)
        session.register_rx_handler(PacketKind.RTS, self.on_rx_rts)
        session.register_rx_handler(PacketKind.CTS, self.on_rx_cts)
        session.register_rx_handler(PacketKind.DATA, self.on_rx_data)
        session.register_order_handler(RtsFrame, self.deliver_rts)
        session.register_unexpected_path(UnexpectedRts, self.match_unexpected)

    # ---------------------------------------------------------------- TX side

    def start_send(self, req: NmRequest, gate: object) -> None:
        """A send chose the rendezvous protocol: queue the RTS op."""
        self.session._enqueue_op(
            f"send_rts#{req.req_id}", lambda ctx, r=req: self.op_send_rts(ctx, r)
        )

    def op_send_rts(self, ctx: ExecContext, req: NmRequest) -> None:
        """Emit the request-to-send handshake frame (§2.3 operation (a))."""
        session = self.session
        gate = session.gate_to(req.peer)
        rail_index = 0
        if session.reliability is not None:
            rail_index = session.reliability.select_rail(gate, 0)
        driver = gate.rails[rail_index]
        if not driver.supports_zero_copy:
            # rendezvous without zero-copy support still bounds unexpected
            # buffering; the DATA leg will be a copy send (TCP driver).
            pass
        packet = RtsFrame(
            send_req_id=req.req_id,
            src=session.node_index,
            tag=req.tag,
            seq=req.seq,
            size=req.size,
        ).to_packet(req.peer)
        req.transition(ReqState.RTS_SENT)
        req.submitted_at = ctx.end
        if session.reliability is not None:
            session.reliability.track(gate, packet, "control", rail_index)
        driver.submit_control(ctx, packet)
        if session.reliability is not None:
            session.reliability.arm(ctx, packet)
        session._trace("nmad.rts", req)

    def on_rx_cts(self, ctx: ExecContext, driver: Driver, packet: Packet) -> None:
        """Sender side: the receiver is ready — send the data zero-copy
        (§2.3 operation (d)).

        With chunking configured (``TimingModel.rdv``), the data phase is
        planned as pipeline chunks striped across the gate's healthy rails:
        chunk 0 goes out here (as the one-shot DATA always did), the rest
        are queued as ops so idle cores register+submit chunk *k+1* while
        the NIC drains chunk *k*. With the default config the plan is one
        chunk on one rail — byte-identical to the seed's behaviour.
        """
        session = self.session
        frame = from_packet(packet)
        assert isinstance(frame, CtsFrame)  # from_packet checked the kind
        req = session._sends.get(frame.send_req_id)
        if req is None or req.state != ReqState.RTS_SENT:
            if session.reliability is not None:
                # stale CTS (the wire-seq dedup normally filters these, but
                # stay tolerant): the rendezvous already moved on
                return
            raise ProtocolError(f"CTS for unknown send #{frame.send_req_id}")
        gate = session.gate_to(req.peer)
        infos = gate.rail_infos()
        if session.reliability is not None:
            infos = session.reliability.filter_rails(gate, infos)
        chunks = self.planner.plan(req.size, infos)
        nchunks = len(chunks)
        recv_req_id = frame.recv_req_id
        req.transition(ReqState.DATA_SENDING)
        req.init_tx_chunks(nchunks)
        mode: str
        raw: Any
        meta: Optional[NdarrayMeta]
        mode, raw, meta = ("none", None, None)
        if nchunks > 1:
            session.stats["rdv_chunked_sends"] += 1
            if len({c.rail_index for c in chunks}) > 1:
                session.stats["rdv_striped_sends"] += 1
            mode, raw, meta = classify_payload(req.payload, req.size)
        # chunk 0 is charged to the CTS handler, like the one-shot DATA was
        self.op_send_chunk(ctx, req, recv_req_id, chunks[0], nchunks, mode, raw, meta)
        for chunk in chunks[1:]:
            session._enqueue_op(
                f"rdv_chunk#{req.req_id}.{chunk.index}",
                lambda c, r=req, rid=recv_req_id, ch=chunk, n=nchunks, m=mode, rw=raw, mt=meta: (
                    self.op_send_chunk(c, r, rid, ch, n, m, rw, mt)
                ),
            )
        session._trace("nmad.data_send", req)

    def op_send_chunk(
        self,
        ctx: ExecContext,
        req: NmRequest,
        recv_req_id: int,
        chunk: RdvChunk,
        nchunks: int,
        mode: str,
        raw: Any,
        meta: Optional[NdarrayMeta],
    ) -> None:
        """Register and submit one DATA chunk of a rendezvous data phase.

        Registration is per-chunk (``register_range``) so the pinning cost
        of the next chunk overlaps the wire drain of the previous one. Each
        chunk is its own tracked packet in the reliability layer, so a lost
        chunk retransmits alone.
        """
        session = self.session
        gate = session.gate_to(req.peer)
        rail_index = chunk.rail_index
        if session.reliability is not None:
            rail_index = session.reliability.select_rail(gate, rail_index)
        out_driver = gate.rails[rail_index]
        if out_driver.supports_zero_copy:
            if nchunks == 1:
                ctx.charge(session.registry.register(req.buffer_id, req.size))
            else:
                ctx.charge(
                    session.registry.register_range(req.buffer_id, chunk.offset, chunk.length)
                )
        if nchunks == 1:
            frame = DataChunkFrame(
                tx_req_id=req.req_id,
                recv_req_id=recv_req_id,
                length=chunk.length,
                payload=req.payload,
            )
        else:
            frame = DataChunkFrame(
                tx_req_id=req.req_id,
                recv_req_id=recv_req_id,
                length=chunk.length,
                payload=slice_raw(mode, raw, chunk.offset, chunk.length, chunk.index),
                mode=mode,
                meta=meta if chunk.index == 0 else None,
                chunk_index=chunk.index,
                offset=chunk.offset,
                size=req.size,
                nchunks=nchunks,
            )
        data = frame.to_packet(session.node_index, req.peer)
        if session.reliability is not None:
            track_mode = "zero_copy" if out_driver.supports_zero_copy else "eager"
            session.reliability.track(gate, data, track_mode, rail_index)
        if out_driver.supports_zero_copy:
            out_driver.submit_zero_copy(ctx, data)
        else:
            session.stats["copies_bytes"] += chunk.length
            out_driver.submit_eager(
                ctx, data, chunk.length, session._numa_factor(ctx, req.producer_core)
            )
        if session.reliability is not None:
            session.reliability.arm(ctx, data)
        if nchunks > 1:
            session.stats["rdv_chunks_sent"] += 1

    # ---------------------------------------------------------------- RX side

    def on_rx_rts(self, ctx: ExecContext, driver: Driver, packet: Packet) -> None:
        """Dispatch-table entry for an arrived RTS: sequence-order the
        handshake against the eager flow of the same (src, tag)."""
        session = self.session
        frame = from_packet(packet)
        assert isinstance(frame, RtsFrame)  # from_packet checked the kind
        for ordered in session.seq_tracker.submit(frame.src, frame.tag, frame.seq, frame):
            session.deliver_in_order(ctx, driver, ordered)

    def deliver_rts(self, ctx: ExecContext, driver: Driver, frame: RtsFrame) -> None:
        """Sequence-ordered delivery of one RTS descriptor."""
        session = self.session
        req = session.match_table.match(frame.src, frame.tag)
        ctx.charge(driver.rx_consume_us())
        if req is not None:
            self.op_answer_rts(ctx, req, frame.src, frame.send_req_id, frame.size)
        else:
            session.stats["unexpected_rts"] += 1
            session.unexpected.add(UnexpectedRts.from_frame(frame, arrived_at=session.sim.now))

    def match_unexpected(self, req: NmRequest, item: UnexpectedRts) -> None:
        """A posted recv matched a buffered RTS: queue the CTS answer op."""
        self.session._enqueue_op(
            f"answer_rts#{req.req_id}",
            lambda ctx, r=req, it=item: self.op_answer_rts(
                ctx, r, it.source, it.send_req_id, it.size
            ),
        )

    def op_answer_rts(
        self, ctx: ExecContext, recv_req: NmRequest, source: int, send_req_id: int, size: int
    ) -> None:
        """Answer a rendezvous handshake: register the application buffer
        and send the CTS (§2.3 operations (b)/(c))."""
        session = self.session
        gate = session.gate_to(source)
        rail_index = 0
        if session.reliability is not None:
            rail_index = session.reliability.select_rail(gate, 0)
        driver = gate.rails[rail_index]
        if driver.supports_zero_copy:
            ctx.charge(session.registry.register(recv_req.buffer_id, size))
        packet = CtsFrame(send_req_id=send_req_id, recv_req_id=recv_req.req_id).to_packet(
            session.node_index, source
        )
        recv_req.transition(ReqState.DATA_WAIT)
        recv_req.received_size = size
        recv_req.source = source
        self._recvs[recv_req.req_id] = recv_req
        if session.reliability is not None:
            session.reliability.track(gate, packet, "control", rail_index)
        driver.submit_control(ctx, packet)
        if session.reliability is not None:
            session.reliability.arm(ctx, packet)
        session._trace("nmad.cts", recv_req)

    def on_rx_data(self, ctx: ExecContext, driver: Driver, packet: Packet) -> None:
        """Dispatch-table entry for an arrived rendezvous DATA transfer."""
        session = self.session
        frame = data_frame(packet)
        recv_id = frame.recv_req_id
        if frame.nchunks <= 1:
            req = self._recvs.pop(recv_id, None)
            if req is None:
                if session.reliability is not None:
                    return  # duplicate DATA already satisfied this recv
                raise ProtocolError(f"DATA for unknown rendezvous recv #{recv_id}")
            ctx.charge(driver.rx_consume_us())
            req.data = frame.payload
            ctx.schedule_after(0.0, session._complete_req, req)
            session._trace("nmad.data_recv", req)
            return
        # chunked data phase: accumulate until every chunk has landed
        pending = self._recvs.get(recv_id)
        if pending is None:
            if session.reliability is not None:
                return  # duplicate chunk of an already-completed recv
            raise ProtocolError(f"DATA chunk for unknown rendezvous recv #{recv_id}")
        ctx.charge(driver.rx_consume_us())
        assembler = self._assembly.get(recv_id)
        if assembler is None:
            assembler = self._assembly[recv_id] = PayloadAssembler(frame.size, frame.nchunks)
        session.stats["rdv_chunks_received"] += 1
        if not assembler.add(frame):
            return
        self._recvs.pop(recv_id, None)
        self._assembly.pop(recv_id, None)
        pending.data = assembler.payload()
        ctx.schedule_after(0.0, session._complete_req, pending)
        session._trace("nmad.data_recv", pending)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RdvEngine n{self.session.node_index} recvs={len(self._recvs)} "
            f"assembling={len(self._assembly)}>"
        )
