"""TCP/Ethernet-like driver.

NewMadeleine also runs over TCP (§3.1). The TCP driver reuses the NIC/wire
machinery with a different cost profile: no PIO path, kernel socket calls
on every submission (syscall cost), payloads always copied through kernel
socket buffers, and no zero-copy — rendezvous still limits unexpected
buffering, but the DATA leg pays the copy.
"""

from __future__ import annotations

from typing import Callable

from ...config import HostModel, NicModel
from ...network.message import CompletionRecord, Packet
from ...network.nic import Nic
from .base import Driver, ExecContext

__all__ = ["TcpDriver", "tcp_nic_model"]


def tcp_nic_model(
    wire_latency_us: float = 25.0,
    wire_bw_bytes_per_us: float = 117.0,  # ≈ 1 Gb/s
    rdv_threshold: int = 64 * 1024,
) -> NicModel:
    """A gigabit-Ethernet-flavoured :class:`NicModel`."""
    return NicModel(
        name="tcp",
        pio_threshold=0,
        rdv_threshold=rdv_threshold,
        wire_latency_us=wire_latency_us,
        wire_bw=wire_bw_bytes_per_us,
        pio_byte_us=0.0,
        tx_setup_us=1.0,
        dma_setup_us=0.5,
        rx_consume_us=1.2,
        poll_us=0.4,
        interrupt_us=12.0,
        reg_setup_us=0.0,
        reg_byte_us=0.0,
    )


class TcpDriver(Driver):
    name = "tcp"
    supports_zero_copy = False

    def __init__(self, nic: Nic, host: HostModel) -> None:
        self.nic = nic
        self.host = host
        self.model: NicModel = nic.model
        self.eager_sends = 0
        self.control_sends = 0

    def pio_threshold(self) -> int:
        return 0

    def rdv_threshold(self) -> int:
        return self.model.rdv_threshold

    def submit_pio(self, ctx: ExecContext, packet: Packet) -> None:  # pragma: no cover - no PIO on TCP
        self.submit_eager(ctx, packet, packet.payload_size)

    def submit_eager(self, ctx: ExecContext, packet: Packet, copy_bytes: int, numa_factor: float = 1.0) -> None:
        self._check_ctx(ctx)
        cost = (
            self.host.syscall_us
            + self.model.tx_setup_us
            + self.host.memcpy_us(copy_bytes) * numa_factor
        )
        ctx.charge(cost)
        self.eager_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_dma, packet)

    def plan_submit(
        self, ctx: ExecContext, packet: Packet, mode: str, copy_bytes: int, numa_factor: float = 1.0
    ) -> Callable[[], None] | None:
        self._check_ctx(ctx)
        if mode == "pio":
            # no PIO on TCP: the classic path degrades to a plain socket
            # send of the whole payload at the local-copy rate
            copy_bytes, numa_factor = packet.payload_size, 1.0
        cost = (
            self.host.syscall_us
            + self.model.tx_setup_us
            + self.host.memcpy_us(copy_bytes) * numa_factor
        )
        ctx.charge(cost)
        self.eager_sends += 1
        return lambda: self.nic.submit_dma(packet)

    def submit_control(self, ctx: ExecContext, packet: Packet) -> None:
        self._check_ctx(ctx)
        ctx.charge(self.host.syscall_us + self.model.tx_setup_us)
        self.control_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_dma, packet)

    def submit_zero_copy(self, ctx: ExecContext, packet: Packet) -> None:
        # TCP cannot DMA from user buffers: the "zero-copy" leg of the
        # rendezvous degenerates to a kernel-buffer copy send.
        self.submit_eager(ctx, packet, packet.payload_size)

    def poll_cpu_us(self) -> float:
        return self.model.poll_us

    def poll(self, max_events: int = 16) -> list[CompletionRecord]:
        return self._record_poll(self.nic.poll(max_events))

    def has_completions(self) -> bool:
        return self.nic.has_completions()

    def add_activity_listener(self, cb: Callable[[], None]) -> None:
        self.nic.add_activity_listener(cb)

    def remove_activity_listener(self, cb: Callable[[], None]) -> None:
        self.nic.remove_activity_listener(cb)

    def rx_consume_us(self) -> float:
        return self.model.rx_consume_us + self.host.syscall_us

    def wire_bandwidth(self) -> float:
        return self.model.wire_bw

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TcpDriver {self.nic.name}>"
