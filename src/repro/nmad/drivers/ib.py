"""InfiniBand Verbs-like driver.

§3.1 lists "Verbs/InfiniBand" among NewMadeleine's networks. The Verbs
cost profile differs from MX in three ways that matter to the engine:

* **inline sends** — payloads up to ~64 B travel inside the work-queue
  entry itself: one CPU write burst, no registration, lowest latency
  (maps onto the PIO path);
* **registration is mandatory** — even eager traffic flows through
  pre-registered bounce buffers (the copy is the same as MX's; the
  *rendezvous* path is RDMA-write and benefits most from the cache);
* **lower latency / higher bandwidth** — DDR-era Verbs: ≈1.3 µs one-way,
  ≈1.4 GiB/s.

The driver reuses the generic NIC/wire machinery with an IB-flavoured
:class:`~repro.config.NicModel` (:func:`ib_nic_model`).
"""

from __future__ import annotations

from typing import Callable

from ...config import HostModel, NicModel
from ...network.message import CompletionRecord, Packet, PacketKind
from ...network.nic import Nic
from ...units import GiB_per_s, KiB
from .base import Driver, ExecContext

__all__ = ["IbDriver", "ib_nic_model"]


def ib_nic_model(
    wire_latency_us: float = 1.3,
    wire_bw: float = GiB_per_s(1.4),
    rdv_threshold: int = KiB(16),
) -> NicModel:
    """A DDR InfiniBand-flavoured :class:`NicModel`.

    Verbs stacks switch to the rendezvous (RDMA write) earlier than MX —
    16 KiB is a common default — because registration-cache hits make the
    zero-copy path cheap.
    """
    return NicModel(
        name="ib",
        pio_threshold=64,  # max inline data
        rdv_threshold=rdv_threshold,
        wire_latency_us=wire_latency_us,
        wire_bw=wire_bw,
        pio_byte_us=0.004,  # inline WQE writes
        tx_setup_us=0.3,  # post_send() is cheap
        dma_setup_us=0.3,
        rx_consume_us=0.4,
        poll_us=0.2,  # CQ polling is a cheap memory read
        interrupt_us=8.0,  # event-channel wakeups are pricier than MX
        reg_setup_us=1.5,  # ibv_reg_mr is heavier than MX registration
        reg_byte_us=0.0003,
    )


class IbDriver(Driver):
    name = "ib"
    supports_zero_copy = True

    def __init__(self, nic: Nic, host: HostModel) -> None:
        self.nic = nic
        self.host = host
        self.model: NicModel = nic.model
        self.inline_sends = 0
        self.eager_sends = 0
        self.rdma_writes = 0
        self.control_sends = 0

    def pio_threshold(self) -> int:
        return self.model.pio_threshold

    def rdv_threshold(self) -> int:
        return self.model.rdv_threshold

    def submit_pio(self, ctx: ExecContext, packet: Packet) -> None:
        """Inline send: payload embedded in the WQE."""
        self._check_ctx(ctx)
        ctx.charge(self.nic.pio_cpu_us(packet))
        self.inline_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_pio, packet)

    def submit_eager(self, ctx: ExecContext, packet: Packet, copy_bytes: int, numa_factor: float = 1.0) -> None:
        """Copy through a pre-registered bounce buffer, then post_send."""
        self._check_ctx(ctx)
        cost = (
            self.model.tx_setup_us
            + self.host.memcpy_us(copy_bytes) * numa_factor
            + self.model.dma_setup_us
        )
        ctx.charge(cost)
        self.eager_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_dma, packet)

    def plan_submit(
        self, ctx: ExecContext, packet: Packet, mode: str, copy_bytes: int, numa_factor: float = 1.0
    ) -> Callable[[], None] | None:
        self._check_ctx(ctx)
        if mode == "pio":
            ctx.charge(self.nic.pio_cpu_us(packet))
            self.inline_sends += 1
            return lambda: self.nic.submit_pio(packet)
        cost = (
            self.model.tx_setup_us
            + self.host.memcpy_us(copy_bytes) * numa_factor
            + self.model.dma_setup_us
        )
        ctx.charge(cost)
        self.eager_sends += 1
        return lambda: self.nic.submit_dma(packet)

    def submit_control(self, ctx: ExecContext, packet: Packet) -> None:
        self._check_ctx(ctx)
        if packet.kind not in (PacketKind.RTS, PacketKind.CTS, PacketKind.ACK):
            raise ValueError(f"not a control packet: {packet!r}")
        ctx.charge(self.nic.pio_cpu_us(packet))
        self.control_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_pio, packet)

    def submit_zero_copy(self, ctx: ExecContext, packet: Packet) -> None:
        """RDMA write from the (registered) application buffer."""
        self._check_ctx(ctx)
        ctx.charge(self.model.tx_setup_us + self.model.dma_setup_us)
        self.rdma_writes += 1
        ctx.schedule_after(0.0, self.nic.submit_dma, packet)

    def poll_cpu_us(self) -> float:
        return self.model.poll_us

    def poll(self, max_events: int = 16) -> list[CompletionRecord]:
        return self._record_poll(self.nic.poll(max_events))

    def has_completions(self) -> bool:
        return self.nic.has_completions()

    def add_activity_listener(self, cb: Callable[[], None]) -> None:
        self.nic.add_activity_listener(cb)

    def remove_activity_listener(self, cb: Callable[[], None]) -> None:
        self.nic.remove_activity_listener(cb)

    def rx_consume_us(self) -> float:
        return self.model.rx_consume_us

    def wire_bandwidth(self) -> float:
        return self.model.wire_bw

    def __repr__(self) -> str:  # pragma: no cover
        return f"<IbDriver {self.nic.name}>"
