"""Driver interface.

Every method that consumes CPU takes an execution context ``ctx``
satisfying :class:`ExecContext` — ``charge(us)`` /
``schedule_after(extra, fn, *args)`` / ``end``
(:class:`repro.marcel.tasklet.TaskletContext` instances are used both for
tasklet execution and for inline execution on application threads). The
driver charges the CPU cost of the operation to ``ctx`` and schedules the
hardware side effect at the point the charged work completes — so the
virtual-time sequence matches a real submission (copy first, doorbell
after).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Protocol, runtime_checkable

from ...errors import NetworkError
from ...network.message import CompletionRecord, Packet
from ..progress import CompletionQueue, WireCompletion

__all__ = ["ExecContext", "Driver"]

#: process-wide monotonic driver numbering — serials are never reused, so
#: they are safe identity keys across engine rebuilds (unlike ``id()``,
#: which the allocator recycles after garbage collection)
_driver_serials = itertools.count(1)


@runtime_checkable
class ExecContext(Protocol):
    """What drivers and protocol engines need from an execution context."""

    #: CPU already charged to this context (µs)
    cpu_us: float

    @property
    def end(self) -> float:
        """Virtual time at which the charged work completes."""

    def charge(self, us: float) -> None:
        """Account ``us`` microseconds of CPU work to this context."""

    def schedule_after(self, extra: float, fn: Callable[..., Any], *args: Any) -> Any:
        """Schedule ``fn(*args)`` ``extra`` µs after the charged work ends."""


class Driver:
    """Abstract transfer driver."""

    #: driver short name ("mx", "shm", "tcp")
    name: str = "base"
    #: whether the hardware can DMA from/to registered app buffers
    supports_zero_copy: bool = False

    #: canonical statistic attributes reported by :meth:`stats`. Subclasses
    #: shadow (as instance attributes) only the ones their paths increment;
    #: the rest read 0 from these class defaults.
    _STAT_ATTRS = (
        "pio_sends",
        "eager_sends",
        "zero_copy_sends",
        "inline_sends",
        "rdma_writes",
        "control_sends",
        "polls",
        "rx_completions",
    )
    pio_sends = 0
    eager_sends = 0
    zero_copy_sends = 0
    inline_sends = 0
    rdma_writes = 0
    control_sends = 0
    polls = 0
    rx_completions = 0

    def stats(self) -> dict[str, int]:
        """Flat submit/poll/rx counters (consumed by ``repro.obs``)."""
        return {key: getattr(self, key) for key in self._STAT_ATTRS}

    def _record_poll(self, records: list[CompletionRecord]) -> list[CompletionRecord]:
        """Count one completion-queue poll and its harvested records;
        subclasses wrap their ``poll()`` return value with this."""
        self.polls += 1
        if records:
            self.rx_completions += len(records)
        return records

    def serial(self) -> int:
        """Monotonic process-unique identity of this driver instance."""
        s: int | None = getattr(self, "_serial", None)
        if s is None:
            s = self._serial = next(_driver_serials)
        return s

    # -- thresholds --------------------------------------------------------------

    def pio_threshold(self) -> int:
        """Max payload for the PIO path (0 = never PIO)."""
        raise NotImplementedError

    def rdv_threshold(self) -> int:
        """Payloads strictly above this use the rendezvous protocol."""
        raise NotImplementedError

    # -- TX ----------------------------------------------------------------------

    def submit_pio(self, ctx: ExecContext, packet: Packet) -> None:
        """CPU-driven submission of a tiny packet."""
        raise NotImplementedError

    def submit_eager(
        self, ctx: ExecContext, packet: Packet, copy_bytes: int, numa_factor: float = 1.0
    ) -> None:
        """Copy ``copy_bytes`` into the registered region and DMA out."""
        raise NotImplementedError

    def submit_control(self, ctx: ExecContext, packet: Packet) -> None:
        """Send a small control frame (RTS/CTS/ACK)."""
        raise NotImplementedError

    def submit_zero_copy(self, ctx: ExecContext, packet: Packet) -> None:
        """DMA directly from a (pre-registered) application buffer."""
        raise NotImplementedError(f"driver {self.name} does not support zero-copy")

    def plan_submit(
        self,
        ctx: ExecContext,
        packet: Packet,
        mode: str,
        copy_bytes: int,
        numa_factor: float = 1.0,
    ) -> Callable[[], None] | None:
        """Fused-submit half of :meth:`submit_pio`/:meth:`submit_eager`.

        Charges exactly the CPU cost the classic ``submit_*`` call for
        ``mode`` (``"pio"``/``"eager"``) would charge, bumps the same
        counters, and returns the *hardware doorbell* as a thunk — the
        caller schedules it once, fused with whatever else fires at the
        same instant (see ``FastPathConfig.fuse_submit``). Returning None
        opts a driver out: the caller falls back to the classic
        event-per-action path. The classic methods stay — the reliability
        layer's retransmit path submits through them directly.
        """
        return None

    # -- completion discovery -------------------------------------------------------

    def poll_cpu_us(self) -> float:
        """CPU cost of one poll of this driver's completion queue."""
        raise NotImplementedError

    def poll(self, max_events: int = 16) -> list[CompletionRecord]:
        raise NotImplementedError

    def poll_into(self, ctx: ExecContext, cq: CompletionQueue, max_events: int = 16) -> int:
        """Poll once and push each harvested record into the session's
        unified completion queue as a typed
        :class:`repro.nmad.progress.WireCompletion`.

        Charges the poll cost unconditionally (polling an empty queue is
        not free) and returns the number of records pushed. The session
        core drains the queue through its dispatch table right after.
        """
        ctx.charge(self.poll_cpu_us())
        count = 0
        for rec in self.poll(max_events):
            cq.push_wire(
                WireCompletion(driver=self, event=rec.event, packet=rec.packet, time=rec.time)
            )
            count += 1
        return count

    def has_completions(self) -> bool:
        raise NotImplementedError

    def add_activity_listener(self, cb: Callable[[], None]) -> None:
        raise NotImplementedError

    def remove_activity_listener(self, cb: Callable[[], None]) -> None:
        """Deregister ``cb``; a no-op if it was never (or already) removed,
        so teardown paths can call it unconditionally."""
        raise NotImplementedError

    # -- receive-side costs -----------------------------------------------------------

    def rx_consume_us(self) -> float:
        """CPU cost to consume one arrived message descriptor."""
        raise NotImplementedError

    def wire_bandwidth(self) -> float:
        """Nominal bandwidth (bytes/µs) — used by the multirail splitter."""
        raise NotImplementedError

    def rdv_chunk_bytes(self) -> int:
        """Driver-preferred pipeline chunk size for the RDV data phase.

        0 (the default) means no preference: the planner sizes chunks from
        :class:`repro.config.RdvConfig` and this driver's bandwidth instead.
        Drivers whose hardware has a natural MTU/pipeline depth override.
        """
        return 0

    # -- common validation ----------------------------------------------------------

    @staticmethod
    def _check_ctx(ctx: object) -> None:
        if not hasattr(ctx, "charge") or not hasattr(ctx, "schedule_after"):
            raise NetworkError(
                f"driver operation needs an execution context, got {type(ctx).__name__}"
            )
