"""Shared-memory driver for intra-node communication (§4.3).

All transfer cost is CPU copy cost: the sender copies into the shared
segment (charged at submit), the receiver copies out (charged through
``rx_consume_us`` plus the session-level unexpected/expected copy logic).
There is no rendezvous on this channel: the "wire" is memory, so everything
up to any size goes the eager way (one copy in, one copy out).
"""

from __future__ import annotations

from typing import Callable

from ...config import HostModel, ShmModel
from ...network.message import CompletionRecord, Packet
from ...network.shm import ShmChannel
from .base import Driver, ExecContext

__all__ = ["ShmDriver"]


class ShmDriver(Driver):
    name = "shm"
    supports_zero_copy = False

    def __init__(self, channel: ShmChannel, host: HostModel) -> None:
        self.channel = channel
        self.host = host
        self.model: ShmModel = channel.model
        self.eager_sends = 0
        self.pio_sends = 0
        self.control_sends = 0

    def pio_threshold(self) -> int:
        return 0  # no PIO notion on shared memory

    def rdv_threshold(self) -> int:
        # everything is "eager" through the shared segment
        return 1 << 62

    def submit_pio(self, ctx: ExecContext, packet: Packet) -> None:  # pragma: no cover - unused path
        self.submit_eager(ctx, packet, packet.payload_size)

    def submit_eager(self, ctx: ExecContext, packet: Packet, copy_bytes: int, numa_factor: float = 1.0) -> None:
        self._check_ctx(ctx)
        cost = self.model.ring_op_us + self.host.memcpy_us(copy_bytes) * numa_factor
        ctx.charge(cost)
        self.eager_sends += 1
        ctx.schedule_after(0.0, self.channel.submit, packet, 0.0)

    def plan_submit(
        self, ctx: ExecContext, packet: Packet, mode: str, copy_bytes: int, numa_factor: float = 1.0
    ) -> Callable[[], None] | None:
        self._check_ctx(ctx)
        if mode == "pio":
            # no PIO notion on shared memory: same copy as the eager path
            copy_bytes, numa_factor = packet.payload_size, 1.0
        ctx.charge(self.model.ring_op_us + self.host.memcpy_us(copy_bytes) * numa_factor)
        self.eager_sends += 1
        return lambda: self.channel.submit(packet, 0.0)

    def submit_control(self, ctx: ExecContext, packet: Packet) -> None:
        self._check_ctx(ctx)
        ctx.charge(self.model.ring_op_us)
        self.control_sends += 1
        ctx.schedule_after(0.0, self.channel.submit, packet, 0.0)

    def poll_cpu_us(self) -> float:
        return self.model.ring_op_us

    def poll(self, max_events: int = 16) -> list[CompletionRecord]:
        return self._record_poll(self.channel.poll(max_events))

    def has_completions(self) -> bool:
        return self.channel.has_completions()

    def add_activity_listener(self, cb: Callable[[], None]) -> None:
        self.channel.add_activity_listener(cb)

    def remove_activity_listener(self, cb: Callable[[], None]) -> None:
        self.channel.remove_activity_listener(cb)

    def rx_consume_us(self) -> float:
        return self.model.ring_op_us

    def wire_bandwidth(self) -> float:
        return self.model.bw

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ShmDriver {self.channel.name}>"
