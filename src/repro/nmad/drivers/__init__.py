"""Transfer-layer drivers (the bottom layer of Fig. 3).

A driver binds the protocol engine to one hardware channel and charges the
correct CPU costs for each operation through an
:class:`repro.marcel.tasklet.TaskletContext`-style execution context.
"""

from .base import Driver
from .ib import IbDriver
from .mx import MxDriver
from .shm import ShmDriver
from .tcp import TcpDriver

__all__ = ["Driver", "MxDriver", "IbDriver", "ShmDriver", "TcpDriver"]
