"""MX/Myrinet-like driver over the NIC model.

Cost structure per §2.2:

* **PIO** (≤ ``pio_threshold``, MX: 128 B): the CPU writes the frame to the
  NIC — `tx_setup + wire_size × pio_byte_us` of CPU, packet on the wire
  immediately after.
* **Eager** (≤ ``rdv_threshold``, MX: 32 KiB): the CPU copies the payload
  into a registered region (host memcpy, scaled by the NUMA factor when
  the submitting core is not the producing core), builds a DMA descriptor,
  and the NIC streams it out.
* **Zero-copy** (rendezvous DATA): descriptor build only; the buffer was
  registered by the protocol layer.
"""

from __future__ import annotations

from typing import Callable

from ...config import HostModel, NicModel
from ...network.message import CompletionRecord, Packet, PacketKind
from ...network.nic import Nic
from .base import Driver, ExecContext

__all__ = ["MxDriver"]


class MxDriver(Driver):
    name = "mx"
    supports_zero_copy = True

    def __init__(self, nic: Nic, host: HostModel) -> None:
        self.nic = nic
        self.host = host
        self.model: NicModel = nic.model
        # statistics
        self.pio_sends = 0
        self.eager_sends = 0
        self.zero_copy_sends = 0
        self.control_sends = 0

    # -- thresholds --------------------------------------------------------------

    def pio_threshold(self) -> int:
        return self.model.pio_threshold

    def rdv_threshold(self) -> int:
        return self.model.rdv_threshold

    # -- TX ----------------------------------------------------------------------

    def submit_pio(self, ctx: ExecContext, packet: Packet) -> None:
        self._check_ctx(ctx)
        ctx.charge(self.nic.pio_cpu_us(packet))
        self.pio_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_pio, packet)

    def submit_eager(self, ctx: ExecContext, packet: Packet, copy_bytes: int, numa_factor: float = 1.0) -> None:
        self._check_ctx(ctx)
        cost = (
            self.model.tx_setup_us
            + self.host.memcpy_us(copy_bytes) * numa_factor
            + self.model.dma_setup_us
        )
        ctx.charge(cost)
        self.eager_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_dma, packet)

    def plan_submit(
        self, ctx: ExecContext, packet: Packet, mode: str, copy_bytes: int, numa_factor: float = 1.0
    ) -> Callable[[], None] | None:
        self._check_ctx(ctx)
        if mode == "pio":
            ctx.charge(self.nic.pio_cpu_us(packet))
            self.pio_sends += 1
            return lambda: self.nic.submit_pio(packet)
        cost = (
            self.model.tx_setup_us
            + self.host.memcpy_us(copy_bytes) * numa_factor
            + self.model.dma_setup_us
        )
        ctx.charge(cost)
        self.eager_sends += 1
        return lambda: self.nic.submit_dma(packet)

    def submit_control(self, ctx: ExecContext, packet: Packet) -> None:
        self._check_ctx(ctx)
        if packet.kind not in (PacketKind.RTS, PacketKind.CTS, PacketKind.ACK):
            # control path is for control frames only
            raise ValueError(f"not a control packet: {packet!r}")
        ctx.charge(self.nic.pio_cpu_us(packet))
        self.control_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_pio, packet)

    def submit_zero_copy(self, ctx: ExecContext, packet: Packet) -> None:
        self._check_ctx(ctx)
        ctx.charge(self.model.tx_setup_us + self.model.dma_setup_us)
        self.zero_copy_sends += 1
        ctx.schedule_after(0.0, self.nic.submit_dma, packet)

    # -- completion discovery -------------------------------------------------------

    def poll_cpu_us(self) -> float:
        return self.model.poll_us

    def poll(self, max_events: int = 16) -> list[CompletionRecord]:
        return self._record_poll(self.nic.poll(max_events))

    def has_completions(self) -> bool:
        return self.nic.has_completions()

    def add_activity_listener(self, cb: Callable[[], None]) -> None:
        self.nic.add_activity_listener(cb)

    def remove_activity_listener(self, cb: Callable[[], None]) -> None:
        self.nic.remove_activity_listener(cb)

    def rx_consume_us(self) -> float:
        return self.model.rx_consume_us

    def wire_bandwidth(self) -> float:
        return self.model.wire_bw

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MxDriver {self.nic.name}>"
