"""Eager/PIO protocol engine (§2.2 of the paper).

Small messages are *buffered* sends: the payload is copied (eager) or
CPU-pushed (PIO) into the wire packet at submission and the send request
completes immediately — only the rendezvous DATA leg of
:class:`repro.nmad.rdv.RdvEngine` waits for DMA drain. On the receive
side, arrived :class:`repro.nmad.wire.EagerFrame` descriptors are
multirail-reassembled, sequence-ordered, and delivered either straight
into a matching posted receive or — unexpected — copied into the
:class:`repro.nmad.unexpected.UnexpectedStore` (§2.2: "only necessary
copies are performed").

The engine registers its handlers against the
:class:`repro.nmad.core.SessionCore` dispatch tables; the session core
never inspects eager frames itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..errors import ProtocolError, RequestError
from ..network.message import Packet, PacketKind
from .drivers.base import Driver, ExecContext
from .request import NmRequest, Protocol, ReqState
from .unexpected import UnexpectedEager
from .wire import EagerFrame, eager_frames, eager_to_packet, make_eager_frame

if TYPE_CHECKING:  # pragma: no cover - engines are owned by the session
    from .core import Gate, SessionCore

__all__ = ["EagerEngine"]


class _Reassembly:
    """Accumulated state of one multirail-split eager message."""

    __slots__ = ("received", "payload")

    def __init__(self) -> None:
        self.received = 0
        self.payload: Any = None


class EagerEngine:
    """Protocol engine for the PIO and eager (copied) send paths."""

    def __init__(self, session: "SessionCore") -> None:
        self.session = session
        #: multirail reassembly: (src, send req_id) -> accumulated state
        self._reassembly: dict[tuple[int, int], _Reassembly] = {}
        self._fuse = session.timing.fastpath.fuse_submit
        session.register_send_path(Protocol.PIO, self.push_send)
        session.register_send_path(Protocol.EAGER, self.push_send)
        session.register_rx_handler(PacketKind.EAGER, self.on_rx)
        session.register_rx_handler(PacketKind.PIO, self.on_rx)
        session.register_order_handler(EagerFrame, self.deliver)
        session.register_unexpected_path(UnexpectedEager, self.match_unexpected)

    # ------------------------------------------------------------------ TX side

    def push_send(self, req: NmRequest, gate: "Gate") -> None:
        """Hand a PIO/eager send to the gate's optimizer strategy and make
        sure a flush op is queued — or an aggregation window opened — to
        drive it out."""
        gate.strategy.push(req)
        if gate.flush_pending:
            return
        window = getattr(gate.strategy, "flush_window_us", 0.0)
        if window > 0.0:
            session = self.session
            if gate in session.windowed_gates:
                return  # window already open: the push joined the batch
            # Defer the flush up to `window` µs so trailing sends can join
            # the packet. An idle core closes the window early through
            # progress() (it sees the gate via has_pending_ops and pays the
            # normal dispatch cost first — the accumulation gap); the timer
            # is the backstop when every core stays busy.
            session.windowed_gates[gate] = lambda ctx, g=gate: self.op_flush_gate(ctx, g)
            gate.strategy.windows_opened += 1
            session.sim.schedule_at(
                session.sim.now + window,
                self._window_timer,
                gate,
                label=f"n{session.node_index}.aggreg.window->n{gate.peer}",
            )
            for cb in session.on_ops_enqueued:
                cb()
            return
        gate.flush_pending = True
        self.session._enqueue_op(
            f"flush->n{gate.peer}", lambda ctx, g=gate: self.op_flush_gate(ctx, g)
        )

    def _window_timer(self, gate: "Gate") -> None:
        """Backstop for an aggregation window nobody closed early: promote
        the deferred flush to a real queued op. Runs in timer (hardware)
        context — no CPU is charged here; the op's executor pays."""
        session = self.session
        if session.windowed_gates.pop(gate, None) is None:
            return  # already closed by an idle core or an inline drain
        gate.strategy.window_timer_flushes += 1
        if not gate.flush_pending:
            gate.flush_pending = True
            session._enqueue_op(
                f"flush->n{gate.peer}", lambda ctx, g=gate: self.op_flush_gate(ctx, g)
            )
        # parked waiters poll the activity flag, not the op queue
        session.activity_flag.set()

    def op_flush_gate(self, ctx: ExecContext, gate: "Gate") -> None:
        """Submit ONE wire packet; requeue if the gate still has more.

        Draining the strategy happens up front (so aggregation sees the
        whole burst), but submissions are one-per-event: concurrent idle
        cores and waiting threads interleave on the remaining packets
        instead of one executor hogging an entire burst.
        """
        session = self.session
        gate.flush_pending = False
        # any flush closes an open window: a stale entry would cost a
        # useless drain attempt later
        session.windowed_gates.pop(gate, None)
        if not gate.pending_plans:
            infos = gate.rail_infos()
            if session.reliability is not None:
                infos = session.reliability.filter_rails(gate, infos)
            gate.pending_plans.extend(gate.strategy.take_plans(infos))
        if not gate.pending_plans:
            return
        plans = [gate.pending_plans.popleft()]
        # sends pushed while earlier plans were queued are still in the
        # strategy — the requeue must cover them too, or they are lost
        if (gate.pending_plans or gate.strategy.pending_count() > 0) and not gate.flush_pending:
            gate.flush_pending = True
            session._enqueue_op(
                f"flush->n{gate.peer}", lambda c, g=gate: self.op_flush_gate(c, g)
            )
        for plan in plans:
            driver = gate.rails[plan.rail_index]
            frames = []
            for e in plan.entries:
                frames.append(
                    make_eager_frame(
                        e.req.req_id,
                        session.node_index,
                        e.req.tag,
                        e.req.seq,
                        e.req.size,
                        e.offset,
                        e.length,
                        e.nchunks,
                        e.req.payload,
                    )
                )
                e.req.init_tx_chunks(e.nchunks)
            packet = eager_to_packet(frames, plan.mode, session.node_index, gate.peer)
            factor = max(
                (session._numa_factor(ctx, e.req.producer_core) for e in plan.entries),
                default=1.0,
            )
            for e in plan.entries:
                if e.req.state == ReqState.QUEUED:
                    e.req.transition(ReqState.SUBMITTED)
                    e.req.submitted_at = ctx.end
            if session.reliability is not None:
                session.reliability.track(gate, packet, plan.mode, plan.rail_index)
            hw = (
                driver.plan_submit(ctx, packet, plan.mode, plan.payload_size(), factor)
                if self._fuse
                else None
            )
            if hw is None:
                if plan.mode == "pio":
                    driver.submit_pio(ctx, packet)
                else:
                    driver.submit_eager(ctx, packet, plan.payload_size(), factor)
            if plan.mode != "pio":
                session.stats["copies_bytes"] += plan.payload_size()
            if session.reliability is not None:
                session.reliability.arm(ctx, packet)
            # Both PIO and eager are *buffered* sends: the request completes
            # as soon as the CPU pushed/copied the payload (MX semantics —
            # the application buffer is reusable immediately). Only the
            # zero-copy rendezvous DATA completes at DMA drain. Fused: one
            # event rings the doorbell and runs every completion inline —
            # same instant, same relative order as the event-per-action path.
            if hw is not None:
                ctx.schedule_after(0.0, self._fused_submit, hw, [e.req for e in plan.entries])
            else:
                for e in plan.entries:
                    ctx.schedule_after(0.0, session._complete_send_chunk, e.req)
            session._trace_raw(
                "nmad.submit", f"gate->n{gate.peer}", f"{plan.mode} {plan.payload_size()}B"
            )

    def _fused_submit(self, hw: Any, reqs: list[NmRequest]) -> None:
        """Single fused event: hardware doorbell, then every per-entry
        completion inline — replaces 1 + len(reqs) scheduled events. Any
        event the doorbell creates (NIC wakeups, fabric arrival) allocates
        its sequence number after this one, exactly as it would after the
        pre-scheduled completions of the classic chain."""
        hw()
        complete = self.session._complete_send_chunk
        for req in reqs:
            complete(req)

    # ------------------------------------------------------------------ RX side

    def on_rx(self, ctx: ExecContext, driver: Driver, packet: Packet) -> None:
        """Dispatch-table entry for arrived EAGER/PIO packets."""
        session = self.session
        for frame in eager_frames(packet):
            whole = frame
            if frame.nchunks > 1:
                merged = self._reassemble(frame)
                if merged is None:
                    continue
                whole = merged
            for ordered in session.seq_tracker.submit(whole.src, whole.tag, whole.seq, whole):
                session.deliver_in_order(ctx, driver, ordered)

    def _reassemble(self, frame: EagerFrame) -> Optional[EagerFrame]:
        """Fold one multirail chunk in; the merged whole-message frame once
        every chunk of the send has arrived, else None."""
        key = (frame.src, frame.req_id)
        state = self._reassembly.get(key)
        if state is None:
            state = self._reassembly[key] = _Reassembly()
        state.received += frame.length
        if frame.offset == 0:
            state.payload = frame.payload
        if state.received < frame.size:
            return None
        if state.received > frame.size:
            raise ProtocolError(
                f"reassembly overflow for send#{frame.req_id}: "
                f"{state.received} > {frame.size}"
            )
        self._reassembly.pop(key)
        return frame.merged(state.payload)

    def deliver(self, ctx: ExecContext, driver: Driver, frame: EagerFrame) -> None:
        """Sequence-ordered delivery of one whole eager message."""
        session = self.session
        req = session.match_table.match(frame.src, frame.tag)
        ctx.charge(driver.rx_consume_us())
        if req is not None:
            # expected: the NIC placed the data straight into the app buffer
            session.stats["expected_eager"] += 1
            if frame.size > req.size:
                raise RequestError(
                    f"message of {frame.size}B overflows posted recv of {req.size}B"
                )
            req.data = frame.payload
            req.received_size = frame.size
            req.source = frame.src
            ctx.schedule_after(0.0, session._complete_req, req)
            session._trace("nmad.recv_expected", req)
        else:
            # unexpected: pay the copy into the unexpected buffer now
            session.stats["unexpected_eager"] += 1
            ctx.charge(session.timing.host.memcpy_us(frame.size))
            session.stats["copies_bytes"] += frame.size
            session.unexpected.add(UnexpectedEager.from_frame(frame, arrived_at=session.sim.now))

    # ------------------------------------------------------- unexpected match

    def match_unexpected(self, req: NmRequest, item: UnexpectedEager) -> None:
        """A posted recv matched a buffered unexpected eager payload: queue
        the copy-out op (the second copy of the unexpected path)."""
        self.session._enqueue_op(
            f"copy_out#{req.req_id}",
            lambda ctx, r=req, it=item: self.op_copy_out(ctx, r, it),
        )

    def op_copy_out(self, ctx: ExecContext, req: NmRequest, item: UnexpectedEager) -> None:
        """Second copy of the unexpected path: unexpected buffer → app."""
        session = self.session
        ctx.charge(session.timing.host.memcpy_us(item.size))
        session.stats["copies_bytes"] += item.size
        req.data = item.payload
        req.received_size = item.size
        req.source = item.source
        ctx.schedule_after(0.0, session._complete_req, req)
        session._trace("nmad.copy_out", req)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<EagerEngine n{self.session.node_index} reassembling={len(self._reassembly)}>"
