"""User-facing send/recv interface (top layer of Fig. 3).

All calls are generators to be used from Marcel thread bodies with
``yield from``. Naming follows the paper's pseudo-code (Fig. 4/7):
``nm_isend`` / ``nm_swait`` become :meth:`isend` / :meth:`swait`.

Sends are **payload-first**: pass real data (``bytes``, ``bytearray``,
``memoryview``, or a numpy array) and the interface derives the wire size
from it; an explicit ``size`` is still accepted — alone (the classic
size-only simulation call) or together with a payload, in which case the
two must agree. All optional arguments are keyword-only.

>>> def body(ctx):
...     req = yield from iface.isend(ctx, peer=1, tag=0, payload=b"x" * 4096)
...     yield ctx.compute(20.0)
...     yield from iface.swait(ctx, req)
"""

from __future__ import annotations

import numbers
import sys
from typing import Any, Generator, Iterable, Optional, Sequence

from ..errors import RequestError
from ..marcel.thread import ThreadContext
from .core import NmSession
from .progress import EngineBase
from .request import NmRequest
from .tags import ANY
from .unexpected import ProbeInfo

__all__ = ["NmInterface", "payload_nbytes"]


def payload_nbytes(payload: Any) -> Optional[int]:
    """Wire size of a payload, or None when it has no obvious byte length.

    The single sizing rule for every layer: the nmad facade derives send
    sizes from it directly, and :mod:`repro.mpi.comm` layers its pickle
    fallback on top for objects with no byte image.
    """
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, memoryview):
        return payload.nbytes
    np = sys.modules.get("numpy")
    if np is not None and isinstance(payload, np.ndarray):
        return payload.nbytes
    return None


class NmInterface:
    """Facade binding a session to a progression engine."""

    def __init__(self, session: NmSession, engine: EngineBase) -> None:
        if engine.session is not session:
            raise RequestError("engine is bound to a different session")
        self.session = session
        self.engine = engine

    # -- argument resolution -------------------------------------------------------

    @staticmethod
    def _resolve_size(size: Any, payload: Any) -> int:
        """Resolve the wire size of a send from ``(size, payload)``.

        Accepts the classic size-only form, the payload-first form (size
        derived from the bytes/numpy payload), and both together (validated
        against each other). A non-integral ``size`` is treated as a
        payload passed positionally — ``isend(ctx, peer, tag, b"data")``
        reads naturally.
        """
        if size is not None and not isinstance(size, numbers.Integral):
            raise RequestError(
                f"size must be an integer, got {type(size).__name__}; "
                "pass data via payload=..."
            )
        derived = payload_nbytes(payload)
        if size is None:
            if derived is None:
                raise RequestError(
                    "cannot derive size: pass size= explicitly or a "
                    "bytes/bytearray/memoryview/numpy payload"
                )
            return derived
        size = int(size)
        if derived is not None and derived != size:
            raise RequestError(
                f"explicit size {size} does not match payload of {derived} bytes"
            )
        return size

    # -- non-blocking -------------------------------------------------------------

    def isend(
        self,
        tctx: ThreadContext,
        peer: int,
        tag: int,
        size: Optional[int] = None,
        *,
        payload: Any = None,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        """Non-blocking send to ``peer`` under ``tag``.

        Either ``size`` (simulated bytes, no data attached) or ``payload``
        (real data; size derived) must be given; both together are
        validated against each other.
        """
        if size is not None and not isinstance(size, numbers.Integral) and payload is None:
            # payload-first positional form: isend(ctx, peer, tag, b"data")
            size, payload = None, size
        nbytes = self._resolve_size(size, payload)
        req = yield from self.engine.isend(tctx, peer, tag, nbytes, payload, buffer_id)
        return req

    def irecv(
        self,
        tctx: ThreadContext,
        source: int = ANY,
        tag: int = ANY,
        size: int = 0,
        *,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        """Non-blocking receive posting (wildcards allowed)."""
        req = yield from self.engine.irecv(tctx, source, tag, size, buffer_id)
        return req

    # -- completion ---------------------------------------------------------------

    def swait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        """Wait for a send request (paper: ``nm_swait``)."""
        if req.kind != "send":
            raise RequestError(f"swait on a {req.kind} request")
        result = yield from self.engine.wait(tctx, req)
        return result

    def rwait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        """Wait for a receive request."""
        if req.kind != "recv":
            raise RequestError(f"rwait on a {req.kind} request")
        result = yield from self.engine.wait(tctx, req)
        return result

    def wait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        """Kind-agnostic wait."""
        result = yield from self.engine.wait(tctx, req)
        return result

    def wait_all(
        self, tctx: ThreadContext, reqs: Sequence[NmRequest] | Iterable[NmRequest]
    ) -> Generator[Any, Any, list[NmRequest]]:
        """Wait for every request in the sequence."""
        out: list[NmRequest] = []
        for req in reqs:
            done = yield from self.engine.wait(tctx, req)
            out.append(done)
        return out

    def wait_any(
        self, tctx: ThreadContext, reqs: Sequence[NmRequest]
    ) -> Generator[Any, Any, tuple[int, NmRequest]]:
        """Wait until *one* request completes; returns ``(index, req)``."""
        result = yield from self.engine.wait_any(tctx, list(reqs))
        return result

    def progress(self, tctx: ThreadContext) -> Generator[Any, Any, bool]:
        """One non-blocking progression pass on the calling thread.

        Runs the engine's inline step (up to its events-per-pass cap) and
        returns True when any work was executed. Never blocks: with a quiet
        session it returns False without charging CPU. This is the hook
        ``MpiRequest.test`` uses so a pure test-loop still drives the
        engine (MPI_Test semantics) instead of spinning on stale state.
        """
        did = yield from self.engine._progress_step(tctx)
        return did

    def drain(self, tctx: ThreadContext) -> Generator[Any, Any, None]:
        """Quiesce before exiting a thread body (MPI_Finalize semantics):
        progresses until no deferred work remains and every reliable packet
        this node sent has been acknowledged. A no-op beyond local work
        when fault recovery is disabled."""
        yield from self.engine.drain(tctx)

    def test(self, req: NmRequest) -> bool:
        """Non-blocking completion check (MPI_Test without progression).

        Pure inspection: drives no progress and charges no CPU — combine
        with :meth:`iprobe`/:meth:`wait_any` for polling loops.
        """
        return req.done

    def test_all(self, reqs: Iterable[NmRequest]) -> bool:
        """True when *every* request has completed (MPI_Testall shape).

        Pure inspection like :meth:`test`: drives no progress, charges no
        CPU. Vacuously True for an empty sequence.
        """
        return all(req.done for req in reqs)

    def test_any(
        self, reqs: Sequence[NmRequest]
    ) -> Optional[tuple[int, NmRequest]]:
        """First completed request as ``(index, req)``, or None.

        Pure inspection like :meth:`test`; the ``(index, req)`` result
        mirrors :meth:`wait_any` so polling loops can switch between the
        two without reshaping their bookkeeping.
        """
        for i, req in enumerate(reqs):
            if req.done:
                return (i, req)
        return None

    # -- probing ------------------------------------------------------------------

    def iprobe(
        self, tctx: ThreadContext, source: int = ANY, tag: int = ANY
    ) -> Generator[Any, Any, Optional[ProbeInfo]]:
        """Non-blocking probe for a pending (unmatched) message.

        Returns a :class:`~repro.nmad.unexpected.ProbeInfo` (typed
        ``source``/``tag``/``size``/``rdv``; still answers ``info["..."]``
        for one release) or None.
        """
        result = yield from self.engine.iprobe(tctx, source, tag)
        return result

    def probe(
        self, tctx: ThreadContext, source: int = ANY, tag: int = ANY
    ) -> Generator[Any, Any, ProbeInfo]:
        """Blocking probe; returns a
        :class:`~repro.nmad.unexpected.ProbeInfo`."""
        result = yield from self.engine.probe(tctx, source, tag)
        return result

    # -- blocking convenience --------------------------------------------------------

    def send(
        self,
        tctx: ThreadContext,
        peer: int,
        tag: int,
        size: Optional[int] = None,
        *,
        payload: Any = None,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        """Blocking send; same ``size``/``payload`` contract as
        :meth:`isend`."""
        req = yield from self.isend(
            tctx, peer, tag, size, payload=payload, buffer_id=buffer_id
        )
        yield from self.swait(tctx, req)
        return req

    def recv(
        self,
        tctx: ThreadContext,
        source: int = ANY,
        tag: int = ANY,
        size: int = 0,
        *,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        req = yield from self.irecv(tctx, source, tag, size, buffer_id=buffer_id)
        yield from self.rwait(tctx, req)
        return req
