"""User-facing send/recv interface (top layer of Fig. 3).

All calls are generators to be used from Marcel thread bodies with
``yield from``. Naming follows the paper's pseudo-code (Fig. 4/7):
``nm_isend`` / ``nm_swait`` become :meth:`isend` / :meth:`swait`.

>>> def body(ctx):
...     req = yield from iface.isend(ctx, peer=1, tag=0, size=4096)
...     yield ctx.compute(20.0)
...     yield from iface.swait(ctx, req)
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Sequence

from ..errors import RequestError
from ..marcel.thread import ThreadContext
from .core import NmSession
from .progress import EngineBase
from .request import NmRequest
from .tags import ANY

__all__ = ["NmInterface"]


class NmInterface:
    """Facade binding a session to a progression engine."""

    def __init__(self, session: NmSession, engine: EngineBase) -> None:
        if engine.session is not session:
            raise RequestError("engine is bound to a different session")
        self.session = session
        self.engine = engine

    # -- non-blocking -------------------------------------------------------------

    def isend(
        self,
        tctx: ThreadContext,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        """Non-blocking send of ``size`` bytes to ``peer`` under ``tag``."""
        req = yield from self.engine.isend(tctx, peer, tag, size, payload, buffer_id)
        return req

    def irecv(
        self,
        tctx: ThreadContext,
        source: int = ANY,
        tag: int = ANY,
        size: int = 0,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        """Non-blocking receive posting (wildcards allowed)."""
        req = yield from self.engine.irecv(tctx, source, tag, size, buffer_id)
        return req

    # -- completion ---------------------------------------------------------------

    def swait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        """Wait for a send request (paper: ``nm_swait``)."""
        if req.kind != "send":
            raise RequestError(f"swait on a {req.kind} request")
        result = yield from self.engine.wait(tctx, req)
        return result

    def rwait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        """Wait for a receive request."""
        if req.kind != "recv":
            raise RequestError(f"rwait on a {req.kind} request")
        result = yield from self.engine.wait(tctx, req)
        return result

    def wait(self, tctx: ThreadContext, req: NmRequest) -> Generator[Any, Any, NmRequest]:
        """Kind-agnostic wait."""
        result = yield from self.engine.wait(tctx, req)
        return result

    def wait_all(
        self, tctx: ThreadContext, reqs: Sequence[NmRequest] | Iterable[NmRequest]
    ) -> Generator[Any, Any, list[NmRequest]]:
        """Wait for every request in the sequence."""
        out: list[NmRequest] = []
        for req in reqs:
            done = yield from self.engine.wait(tctx, req)
            out.append(done)
        return out

    def wait_any(
        self, tctx: ThreadContext, reqs: Sequence[NmRequest]
    ) -> Generator[Any, Any, tuple[int, NmRequest]]:
        """Wait until *one* request completes; returns ``(index, req)``."""
        result = yield from self.engine.wait_any(tctx, list(reqs))
        return result

    def drain(self, tctx: ThreadContext) -> Generator[Any, Any, None]:
        """Quiesce before exiting a thread body (MPI_Finalize semantics):
        progresses until no deferred work remains and every reliable packet
        this node sent has been acknowledged. A no-op beyond local work
        when fault recovery is disabled."""
        yield from self.engine.drain(tctx)

    def test(self, req: NmRequest) -> bool:
        """Non-blocking completion check (MPI_Test without progression).

        Pure inspection: drives no progress and charges no CPU — combine
        with :meth:`iprobe`/:meth:`wait_any` for polling loops.
        """
        return req.done

    # -- probing ------------------------------------------------------------------

    def iprobe(
        self, tctx: ThreadContext, source: int = ANY, tag: int = ANY
    ) -> Generator[Any, Any, "dict | None"]:
        """Non-blocking probe for a pending (unmatched) message."""
        result = yield from self.engine.iprobe(tctx, source, tag)
        return result

    def probe(
        self, tctx: ThreadContext, source: int = ANY, tag: int = ANY
    ) -> Generator[Any, Any, dict]:
        """Blocking probe; returns ``{"source", "tag", "size", "rdv"}``."""
        result = yield from self.engine.probe(tctx, source, tag)
        return result

    # -- blocking convenience --------------------------------------------------------

    def send(
        self,
        tctx: ThreadContext,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        req = yield from self.isend(tctx, peer, tag, size, payload, buffer_id)
        yield from self.swait(tctx, req)
        return req

    def recv(
        self,
        tctx: ThreadContext,
        source: int = ANY,
        tag: int = ANY,
        size: int = 0,
        buffer_id: object = None,
    ) -> Generator[Any, Any, NmRequest]:
        req = yield from self.irecv(tctx, source, tag, size, buffer_id)
        yield from self.rwait(tctx, req)
        return req
