"""Typed wire schema: the packet descriptors exchanged by the protocols.

Every protocol frame that crosses the simulated wire is one of the slotted
frozen dataclasses below — :class:`EagerFrame` (one application message,
or one multirail chunk of one, inside an eager/PIO packet),
:class:`RtsFrame` / :class:`CtsFrame` (the rendezvous handshake),
:class:`DataChunkFrame` (the rendezvous data phase, whole or pipelined),
and :class:`AckFrame` (reliability acknowledgements). The ``to_packet``
codecs build :class:`repro.network.message.Packet` instances carrying the
frames; :func:`from_packet` parses an arrived packet back into its typed
frame(s) and raises :class:`repro.errors.ProtocolError` on malformed
traffic instead of the ``KeyError`` a raw header dict would give.

Two wire-level adornments intentionally stay *outside* the schema, as raw
header keys, because they are stamped below the protocol layer:
``wire_seq`` (reliability sequence numbers, see
:mod:`repro.nmad.reliability`) and ``corrupted`` (set by the fault
injector in :mod:`repro.network.fabric`). The accessors
:func:`wire_seq_of` / :func:`mark_wire_seq` / :func:`is_corrupted` are the
only sanctioned way to touch them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence, Union

from ..errors import ProtocolError
from ..network.message import Packet, PacketKind
from ..network.pool import POOL_MAX, POOL_REFS, acquire_packet, refcount, release_packet

__all__ = [
    "NdarrayMeta",
    "EagerFrame",
    "RtsFrame",
    "CtsFrame",
    "DataChunkFrame",
    "AckFrame",
    "Frame",
    "eager_to_packet",
    "make_eager_frame",
    "recycle_wire",
    "from_packet",
    "eager_frames",
    "data_frame",
    "tx_req_ids",
    "wire_seq_of",
    "mark_wire_seq",
    "is_corrupted",
]


@dataclass(frozen=True, slots=True)
class NdarrayMeta:
    """Reconstruction metadata for a numpy payload shipped as raw bytes."""

    dtype: str
    shape: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class EagerFrame:
    """One application message — or one multirail chunk of one — inside an
    eager/PIO wire packet.

    ``offset``/``length``/``nchunks`` describe the chunk geometry when the
    multirail split strategy cut the message across packets; a whole
    message is the degenerate ``offset=0, length=size, nchunks=1`` frame.
    """

    req_id: int
    src: int
    tag: int
    seq: int
    size: int
    offset: int
    length: int
    nchunks: int
    payload: Any = None

    def merged(self, payload: Any) -> "EagerFrame":
        """The whole-message frame produced by multi-chunk reassembly."""
        return replace(
            self, offset=0, length=self.size, nchunks=1, payload=payload
        )


@dataclass(frozen=True, slots=True)
class RtsFrame:
    """Rendezvous request-to-send: announces a large message (§2.3 (a))."""

    send_req_id: int
    src: int
    tag: int
    seq: int
    size: int

    def to_packet(self, dst_node: int) -> Packet:
        packet = acquire_packet(PacketKind.RTS, self.src, dst_node, 0)
        packet.headers["frame"] = self
        return packet


@dataclass(frozen=True, slots=True)
class CtsFrame:
    """Rendezvous clear-to-send: the receive buffer is registered and the
    sender may start the data phase (§2.3 (c))."""

    send_req_id: int
    recv_req_id: int

    def to_packet(self, src_node: int, dst_node: int) -> Packet:
        packet = acquire_packet(PacketKind.CTS, src_node, dst_node, 0)
        packet.headers["frame"] = self
        return packet


@dataclass(frozen=True, slots=True)
class DataChunkFrame:
    """One rendezvous DATA transfer — the whole payload (``nchunks == 1``)
    or one pipeline chunk of it (see :class:`repro.nmad.rdv.RdvPlanner`).

    ``mode`` is the payload transport classification from
    :func:`repro.nmad.rdv.classify_payload` (``"whole"`` for the unchunked
    leg, which ships the application object as-is); ``meta`` carries numpy
    reconstruction info on chunk 0 of an ``"ndarray"`` transfer.
    """

    tx_req_id: int
    recv_req_id: int
    length: int
    payload: Any = None
    mode: str = "whole"
    meta: Optional[NdarrayMeta] = None
    chunk_index: int = 0
    offset: int = 0
    size: int = 0
    nchunks: int = 1

    def to_packet(self, src_node: int, dst_node: int) -> Packet:
        packet = acquire_packet(PacketKind.DATA, src_node, dst_node, self.length)
        packet.headers["frame"] = self
        return packet


@dataclass(frozen=True, slots=True)
class AckFrame:
    """Reliability acknowledgement for one received wire sequence number."""

    ack_seq: int

    def to_packet(self, src_node: int, dst_node: int) -> Packet:
        packet = acquire_packet(PacketKind.ACK, src_node, dst_node, 0)
        packet.headers["frame"] = self
        return packet


Frame = Union[EagerFrame, RtsFrame, CtsFrame, DataChunkFrame, AckFrame]

#: which frame type each single-frame packet kind must carry
_KIND_FRAME: dict[str, type] = {
    PacketKind.RTS: RtsFrame,
    PacketKind.CTS: CtsFrame,
    PacketKind.DATA: DataChunkFrame,
    PacketKind.ACK: AckFrame,
}


# ------------------------------------------------------------------- codecs


def eager_to_packet(
    frames: Sequence[EagerFrame], mode: str, src_node: int, dst_node: int
) -> Packet:
    """Build one eager/PIO wire packet carrying ``frames``.

    ``mode`` is the strategy plan mode (``"pio"`` or ``"eager"``); the
    packet's payload size is the sum of the frame chunk lengths.
    """
    if not frames:
        raise ProtocolError("an eager packet needs at least one frame")
    packet = acquire_packet(
        PacketKind.PIO if mode == "pio" else PacketKind.EAGER,
        src_node,
        dst_node,
        sum(f.length for f in frames),
    )
    packet.headers["entries"] = tuple(frames)
    return packet


_frame_pool: list[EagerFrame] = []


def make_eager_frame(
    req_id: int,
    src: int,
    tag: int,
    seq: int,
    size: int,
    offset: int,
    length: int,
    nchunks: int,
    payload: Any = None,
) -> EagerFrame:
    """An :class:`EagerFrame`, recycled from the freelist when possible.

    Frozen-dataclass reuse goes through ``object.__setattr__`` — the frame
    is exclusively owned once popped, so immutability guarantees hold for
    every other holder.
    """
    pool = _frame_pool
    if pool:
        frame = pool.pop()
        fset = object.__setattr__
        fset(frame, "req_id", req_id)
        fset(frame, "src", src)
        fset(frame, "tag", tag)
        fset(frame, "seq", seq)
        fset(frame, "size", size)
        fset(frame, "offset", offset)
        fset(frame, "length", length)
        fset(frame, "nchunks", nchunks)
        fset(frame, "payload", payload)
        return frame
    return EagerFrame(
        req_id=req_id,
        src=src,
        tag=tag,
        seq=seq,
        size=size,
        offset=offset,
        length=length,
        nchunks=nchunks,
        payload=payload,
    )


def recycle_wire(packet: Packet) -> None:
    """Opportunistically return a consumed wire packet — and, for eager/PIO
    packets, its frames — to the freelists.

    Safe to call on any packet at any point: the refcount guards veto the
    recycle whenever the reliability layer, an unpolled completion on the
    other side of the fabric, a parked out-of-order frame, or any other
    holder still references the object. The caller must hold the packet in
    exactly one local binding.
    """
    if refcount is None:  # pragma: no cover - non-CPython
        return
    # the caller's local + our parameter stand in for the baseline probe
    if refcount(packet) != POOL_REFS + 1:
        return
    if packet.kind in (PacketKind.EAGER, PacketKind.PIO):
        entries = packet.headers.get("entries")
        # frames are recyclable only when the entries tuple dies with the
        # packet, i.e. the headers dict is its sole remaining holder
        if type(entries) is tuple and refcount(entries) == POOL_REFS + 1:
            pool = _frame_pool
            for frame in entries:
                if (
                    isinstance(frame, EagerFrame)
                    and len(pool) < POOL_MAX
                    and refcount(frame) == POOL_REFS + 1
                ):
                    object.__setattr__(frame, "payload", None)
                    pool.append(frame)
    release_packet(packet, holders=2)


def eager_frames(packet: Packet) -> tuple[EagerFrame, ...]:
    """The typed frames of an eager/PIO packet."""
    if packet.kind not in (PacketKind.EAGER, PacketKind.PIO):
        raise ProtocolError(f"not an eager/PIO packet: {packet!r}")
    entries = packet.headers.get("entries")
    if not isinstance(entries, tuple) or not all(
        isinstance(e, EagerFrame) for e in entries
    ):
        raise ProtocolError(f"eager packet without typed entries: {packet!r}")
    return entries


def from_packet(packet: Packet) -> Frame:
    """Parse a single-frame packet (RTS/CTS/DATA/ACK) into its typed frame."""
    expected = _KIND_FRAME.get(packet.kind)
    if expected is None:
        raise ProtocolError(
            f"packet kind {packet.kind!r} has no single-frame schema "
            "(eager/PIO packets carry multiple frames; use eager_frames)"
        )
    frame = packet.headers.get("frame")
    if not isinstance(frame, expected):
        raise ProtocolError(
            f"{packet.kind} packet without a {expected.__name__}: {packet!r}"
        )
    return frame


def data_frame(packet: Packet) -> DataChunkFrame:
    """The typed frame of a rendezvous DATA packet."""
    frame = from_packet(packet)
    assert isinstance(frame, DataChunkFrame)  # from_packet checked the kind
    return frame


def tx_req_ids(packet: Packet) -> tuple[int, ...]:
    """Send request ids whose buffers this packet carries (TX completion /
    ACK-release lookup); empty for control frames and foreign packets."""
    entries = packet.headers.get("entries")
    if isinstance(entries, tuple):
        return tuple(f.req_id for f in entries if isinstance(f, EagerFrame))
    frame = packet.headers.get("frame")
    if isinstance(frame, DataChunkFrame):
        return (frame.tx_req_id,)
    return ()


# ------------------------------------------------- wire-level adornments


def wire_seq_of(packet: Packet) -> Optional[int]:
    """Reliability wire sequence number, or None for unreliable traffic."""
    seq = packet.headers.get("wire_seq")
    return seq if isinstance(seq, int) else None


def mark_wire_seq(packet: Packet, seq: int) -> None:
    """Stamp a reliability wire sequence number onto an outgoing packet."""
    packet.headers["wire_seq"] = seq


def is_corrupted(packet: Packet) -> bool:
    """True when the fault injector flagged this packet's checksum bad."""
    return bool(packet.headers.get("corrupted"))
