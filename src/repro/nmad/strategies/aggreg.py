"""Aggregation strategy: coalesce pending small sends into fewer packets.

This is the flagship NewMadeleine optimization ([2], §1): when several
sends to the same gate are pending (which happens precisely when
submission has been deferred — e.g. offloaded by PIOMan while the NIC was
busy), they are packed into one wire packet, saving per-packet setup and
wire header costs.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigError
from ...network.message import HEADER_BYTES
from .base import PacketPlan, RailInfo, SendEntry, Strategy

__all__ = ["AggregationStrategy"]

#: per-aggregated-entry descriptor bytes inside the packet
ENTRY_HEADER_BYTES = 16


class AggregationStrategy(Strategy):
    name = "aggreg"

    def __init__(self, max_packet_bytes: int | None = None) -> None:
        super().__init__()
        if max_packet_bytes is not None and max_packet_bytes <= HEADER_BYTES:
            raise ConfigError(
                f"max_packet_bytes must exceed the header ({HEADER_BYTES}B)"
            )
        self.max_packet_bytes = max_packet_bytes
        self.aggregated_requests = 0

    def take_plans(self, rails: Sequence[RailInfo]) -> list[PacketPlan]:
        rail = rails[0]
        limit = self.max_packet_bytes or rail.rdv_threshold
        plans: list[PacketPlan] = []
        batch: list[SendEntry] = []
        batch_bytes = 0

        def close_batch() -> None:
            nonlocal batch, batch_bytes
            if not batch:
                return
            mode = (
                "pio"
                if len(batch) == 1 and batch[0].length <= rail.pio_threshold
                else "eager"
            )
            plans.append(PacketPlan(rail_index=rail.index, entries=batch, mode=mode))
            if len(batch) > 1:
                self.aggregated_requests += len(batch)
            batch = []
            batch_bytes = 0

        for req in self._drain():
            entry_bytes = req.size + ENTRY_HEADER_BYTES
            if batch and batch_bytes + entry_bytes > limit:
                close_batch()
            batch.append(SendEntry(req=req, offset=0, length=req.size))
            batch_bytes += entry_bytes
            if batch_bytes >= limit:
                close_batch()
        close_batch()
        if plans:
            self.flushes += 1
            self.packets_formed += len(plans)
        return plans
