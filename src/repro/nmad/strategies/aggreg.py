"""Aggregation strategy: coalesce pending small sends into fewer packets.

This is the flagship NewMadeleine optimization ([2], §1): when several
sends to the same gate are pending (which happens precisely when
submission has been deferred — e.g. offloaded by PIOMan while the NIC was
busy, or parked in an aggregation window), they are packed into one wire
packet, saving per-packet setup and wire header costs.

Two optimizer axes beyond plain packing:

* **multirail distribution** — on a gate with several rails, the drained
  burst is striped across rails proportionally to bandwidth (the same
  :func:`repro.nmad.strategies.base.stripe_by_bandwidth` arithmetic as
  the split strategy and the RDV planner), at whole-request granularity
  so each message still travels one packet. Receiver-side sequence
  tracking restores per-(source, tag) FIFO across rails.
* **deferred-flush window** — ``flush_window_us > 0`` asks the eager
  engine to hold the flush open for up to that long so trailing sends can
  join the batch; an idle core (PIOMan) closes the window early, a timer
  backstops it. See ``docs/performance.md`` for when this hurts latency.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigError
from ...network.message import HEADER_BYTES
from ..request import NmRequest
from .base import PacketPlan, RailInfo, SendEntry, Strategy, stripe_by_bandwidth

__all__ = ["AggregationStrategy"]

#: per-aggregated-entry descriptor bytes inside the packet
ENTRY_HEADER_BYTES = 16


class AggregationStrategy(Strategy):
    name = "aggreg"

    def __init__(
        self,
        max_packet_bytes: int | None = None,
        flush_window_us: float = 0.0,
        multirail: bool = True,
    ) -> None:
        super().__init__()
        if max_packet_bytes is not None and max_packet_bytes <= HEADER_BYTES:
            raise ConfigError(
                f"max_packet_bytes must exceed the header ({HEADER_BYTES}B)"
            )
        if flush_window_us < 0.0:
            raise ConfigError(f"flush_window_us must be >= 0, got {flush_window_us}")
        self.max_packet_bytes = max_packet_bytes
        #: hold flushes open this long so trailing sends can join (0 = off)
        self.flush_window_us = flush_window_us
        #: serve multi-rail gates by striping; False = single-rail only
        self.multirail = multirail
        # statistics
        self.aggregated_requests = 0
        self.windows_opened = 0
        self.window_timer_flushes = 0

    def take_plans(self, rails: Sequence[RailInfo]) -> list[PacketPlan]:
        if not rails:
            raise ConfigError("aggregation flush with no usable rails")
        if len(rails) > 1 and not self.multirail:
            # refuse loudly instead of silently draining everything through
            # rails[0] and leaving the other rails idle
            raise ConfigError(
                "AggregationStrategy(multirail=False) serves single-rail "
                f"gates only, got {len(rails)} rails"
            )
        reqs = self._drain()
        if not reqs:
            return []
        plans: list[PacketPlan] = []
        if len(rails) == 1:
            self._pack_rail(rails[0], reqs, plans)
        else:
            # stripe the burst across rails proportionally to bandwidth, at
            # whole-request granularity: a request is never split, it just
            # fills the current rail's byte share before moving on
            total = sum(r.size + ENTRY_HEADER_BYTES for r in reqs)
            shares = stripe_by_bandwidth(total, rails)
            ri = 0
            consumed = 0
            batch: list[NmRequest] = []
            for req in reqs:
                while ri < len(rails) - 1 and (shares[ri] <= 0 or consumed >= shares[ri]):
                    if batch:
                        self._pack_rail(rails[ri], batch, plans)
                        batch = []
                    ri += 1
                    consumed = 0
                batch.append(req)
                consumed += req.size + ENTRY_HEADER_BYTES
            if batch:
                self._pack_rail(rails[ri], batch, plans)
        if plans:
            self.flushes += 1
            self.packets_formed += len(plans)
        return plans

    def _pack_rail(
        self, rail: RailInfo, reqs: Sequence[NmRequest], plans: list[PacketPlan]
    ) -> None:
        """Pack ``reqs`` (in order) into size-limited packets on ``rail``."""
        limit = self.max_packet_bytes or rail.rdv_threshold
        batch: list[SendEntry] = []
        batch_bytes = 0

        def close_batch() -> None:
            nonlocal batch, batch_bytes
            if not batch:
                return
            mode = (
                "pio"
                if len(batch) == 1 and batch[0].length <= rail.pio_threshold
                else "eager"
            )
            plans.append(PacketPlan(rail_index=rail.index, entries=batch, mode=mode))
            if len(batch) > 1:
                self.aggregated_requests += len(batch)
            batch = []
            batch_bytes = 0

        for req in reqs:
            entry_bytes = req.size + ENTRY_HEADER_BYTES
            if batch and batch_bytes + entry_bytes > limit:
                close_batch()
            batch.append(SendEntry(req=req, offset=0, length=req.size))
            batch_bytes += entry_bytes
            if batch_bytes >= limit:
                close_batch()
        close_batch()
