"""Multirail split strategy: stripe large eager sends over several rails.

When a gate has more than one rail (e.g. two MX NICs), messages above
``split_threshold`` are divided into per-rail chunks proportional to rail
bandwidth ([2] calls this "multirail distribution"). The receive side
reassembles chunks before matching (see
:meth:`repro.nmad.eager.EagerEngine.on_rx`).
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ConfigError
from .base import PacketPlan, RailInfo, SendEntry, Strategy, stripe_by_bandwidth

__all__ = ["MultirailSplitStrategy"]


class MultirailSplitStrategy(Strategy):
    name = "split"

    def __init__(self, split_threshold: int = 4096) -> None:
        super().__init__()
        if split_threshold <= 0:
            raise ConfigError(f"split_threshold must be > 0, got {split_threshold}")
        self.split_threshold = split_threshold
        self.split_messages = 0

    def take_plans(self, rails: Sequence[RailInfo]) -> list[PacketPlan]:
        plans: list[PacketPlan] = []
        for req in self._drain():
            if len(rails) < 2 or req.size < self.split_threshold:
                rail = rails[0]
                mode = "pio" if req.size <= rail.pio_threshold else "eager"
                plans.append(
                    PacketPlan(rail.index, [SendEntry(req, 0, req.size)], mode)
                )
                continue
            # proportional striping; last rail absorbs rounding remainder
            self.split_messages += 1
            nchunks = len(rails)
            offset = 0
            for rail, length in zip(rails, stripe_by_bandwidth(req.size, rails)):
                plans.append(
                    PacketPlan(
                        rail.index,
                        [SendEntry(req, offset, length, nchunks=nchunks)],
                        "eager",
                    )
                )
                offset += length
        if plans:
            self.flushes += 1
            self.packets_formed += len(plans)
        return plans
