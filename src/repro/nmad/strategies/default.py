"""Default FIFO strategy: one packet per request, rail 0."""

from __future__ import annotations

from typing import Sequence

from .base import PacketPlan, RailInfo, SendEntry, Strategy

__all__ = ["DefaultStrategy"]


class DefaultStrategy(Strategy):
    name = "default"

    def take_plans(self, rails: Sequence[RailInfo]) -> list[PacketPlan]:
        rail = rails[0]
        plans: list[PacketPlan] = []
        for req in self._drain():
            mode = "pio" if req.size <= rail.pio_threshold else "eager"
            plans.append(
                PacketPlan(
                    rail_index=rail.index,
                    entries=[SendEntry(req=req, offset=0, length=req.size)],
                    mode=mode,
                )
            )
        if plans:
            self.flushes += 1
            self.packets_formed += len(plans)
        return plans
