"""Optimizer/scheduler layer strategies (middle layer of Fig. 3).

NewMadeleine applies "dynamic scheduling optimizations on multiple
communication flows such as reordering, aggregation, multirail
distribution" (§3.1, [2]). A strategy owns one gate's pending-send list
and decides, at flush time, how pending requests become wire packets.
"""

from typing import Any

from .aggreg import AggregationStrategy
from .base import PacketPlan, RailInfo, SendEntry, Strategy, stripe_by_bandwidth
from .default import DefaultStrategy
from .split import MultirailSplitStrategy

__all__ = [
    "Strategy",
    "PacketPlan",
    "RailInfo",
    "SendEntry",
    "stripe_by_bandwidth",
    "DefaultStrategy",
    "AggregationStrategy",
    "MultirailSplitStrategy",
    "make_strategy",
]


def make_strategy(name: str, **kwargs: Any) -> Strategy:
    """Factory: ``default``, ``aggreg``, ``split``."""
    table: dict[str, type[Strategy]] = {
        "default": DefaultStrategy,
        "aggreg": AggregationStrategy,
        "split": MultirailSplitStrategy,
    }
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {sorted(table)}"
        ) from None
    return cls(**kwargs)
