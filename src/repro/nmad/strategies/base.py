"""Strategy interface and packet-plan data types."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from ...errors import ProtocolError
from ..request import NmRequest

__all__ = ["SendEntry", "PacketPlan", "RailInfo", "Strategy", "stripe_by_bandwidth"]


@dataclass(frozen=True)
class RailInfo:
    """What a strategy may know about one rail (driver) of a gate."""

    index: int
    pio_threshold: int
    rdv_threshold: int
    bandwidth: float  # bytes/µs
    #: driver-suggested pipeline chunk size for the RDV data phase
    #: (0 = no preference); consumed by :mod:`repro.nmad.rdv`.
    chunk_hint: int = 0


def stripe_by_bandwidth(total: int, rails: Sequence[RailInfo]) -> list[int]:
    """Split ``total`` bytes across ``rails`` proportionally to bandwidth.

    Returns one share per rail, in rail order; the last rail absorbs the
    integer-division remainder so the shares always sum to ``total``. Shares
    may be zero (a rail with negligible relative bandwidth) — callers that
    cannot use empty shares filter them out. This is the splitting rule the
    multirail eager strategy has always used; the RDV planner stripes its
    data phase with the same arithmetic so both paths divide identically.
    """
    total_bw = sum(r.bandwidth for r in rails) or 1.0
    shares: list[int] = []
    consumed = 0
    for i, rail in enumerate(rails):
        if i == len(rails) - 1:
            length = total - consumed  # last rail absorbs remainder
        else:
            length = int(total * rail.bandwidth / total_bw)
        shares.append(length)
        consumed += length
    return shares


@dataclass(slots=True)
class SendEntry:
    """One request (or chunk of a request) inside a planned packet."""

    req: NmRequest
    offset: int
    length: int
    nchunks: int = 1

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ProtocolError(f"invalid chunk geometry {self.offset}+{self.length}")
        if self.offset + self.length > self.req.size:
            raise ProtocolError(
                f"chunk {self.offset}+{self.length} exceeds request size {self.req.size}"
            )


@dataclass(slots=True)
class PacketPlan:
    """A wire packet to build: which rail, which entries, which TX mode."""

    rail_index: int
    entries: list[SendEntry]
    mode: str  # "pio" | "eager"

    def payload_size(self) -> int:
        return sum(e.length for e in self.entries)

    def __post_init__(self) -> None:
        if self.mode not in ("pio", "eager"):
            raise ProtocolError(f"invalid plan mode {self.mode!r}")
        if not self.entries:
            raise ProtocolError("empty packet plan")


class Strategy:
    """Per-gate pending-send list + packet formation policy.

    Subclasses implement :meth:`take_plans`. ``push``/``pending_count`` are
    shared. A strategy only ever sees *eager-protocol* requests — the
    rendezvous path bypasses the optimizer (its packets are handshakes and
    zero-copy data, nothing to coalesce).
    """

    name = "base"

    def __init__(self) -> None:
        self._pending: deque[NmRequest] = deque()
        #: statistics
        self.flushes = 0
        self.packets_formed = 0

    def push(self, req: NmRequest) -> None:
        if req.kind != "send":
            raise ProtocolError(f"strategies only hold sends, got {req.kind}")
        self._pending.append(req)

    def pending_count(self) -> int:
        return len(self._pending)

    def take_plans(self, rails: Sequence[RailInfo]) -> list[PacketPlan]:
        """Drain (some of) the pending list into packet plans."""
        raise NotImplementedError

    def _drain(self) -> list[NmRequest]:
        out = list(self._pending)
        self._pending.clear()
        return out
