"""Recovery machinery: sequence numbers, ACK/retransmit, degraded links.

The paper's engine runs over MX, whose firmware provides link-level
reliability, so NewMadeleine's protocols assume a lossless wire. When the
fabric misbehaves (see :mod:`repro.faults`), this layer — enabled through
:class:`repro.config.FaultConfig` — restores the lossless contract the
protocol state machines above it expect:

* every reliable packet (eager/PIO payloads, RTS/CTS handshake frames,
  rendezvous DATA) carries a per-gate **wire sequence number**;
* the receive side **deduplicates** by wire sequence (retransmissions and
  fabric-duplicated frames are swallowed before they can confuse the
  per-tag :class:`repro.nmad.tags.SequenceTracker`) and **acknowledges**
  every fresh reliable frame with an ACK control frame — duplicates are
  re-acknowledged, since a duplicate usually means the first ACK was lost;
* the send side keeps unacknowledged packets and **retransmits** on timeout
  with exponential backoff. Payload frames time out after ``ack_timeout_us``;
  the rendezvous handshake frames (RTS/CTS) use the separate
  ``rts_timeout_us``. Acking the RTS itself (rather than waiting for the
  CTS) matters: the CTS only comes back once the application posts the
  matching receive, which can be arbitrarily late — retries must stop when
  the RTS is *delivered*, and a lost CTS is re-sent by the receiver's own
  timer;
* packets flagged corrupted by the injector are discarded *without* an ACK,
  so corruption degenerates to loss and the same retransmit path heals it;
* repeated timeouts on one rail put it in a :class:`DegradedLink` state:
  new submissions and retransmissions reroute to an alternate rail of the
  gate (the multirail machinery — including the ``split`` strategy — simply
  sees a reduced rail set) until the link sits quiet for
  ``degraded_restore_us`` or a delivery on it proves it healthy again.

Retransmit timers fire in hardware (sim-callback) context: they only
enqueue a session op and notify the engines, which re-arm their detection
paths; the actual resubmission is charged to whichever execution context
runs the op, identically to any other deferred operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..network.message import Packet, PacketKind
from .progress import RecoveryCompletion
from .strategies.base import RailInfo
from .wire import (
    AckFrame,
    data_frame,
    from_packet,
    is_corrupted,
    mark_wire_seq,
    tx_req_ids,
    wire_seq_of,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.events import EventHandle
    from .core import Gate, SessionCore
    from .drivers.base import Driver, ExecContext

__all__ = ["DegradedLink", "ReliabilityLayer"]

#: packet kinds using the handshake timeout instead of the payload timeout
_HANDSHAKE_KINDS = (PacketKind.RTS, PacketKind.CTS)


@dataclass
class DegradedLink:
    """A rail currently avoided because its link timed out repeatedly."""

    peer: int
    rail_index: int
    since_us: float
    until_us: float


class _Pending:
    """One unacknowledged reliable packet on the send side."""

    __slots__ = ("key", "gate", "packet", "mode", "attempts", "timer", "rail_index")

    def __init__(
        self, key: tuple[int, int], gate: "Gate", packet: Packet, mode: str, rail_index: int
    ) -> None:
        self.key = key
        self.gate = gate
        self.packet = packet
        self.mode = mode  # "pio" | "eager" | "control" | "zero_copy"
        self.attempts = 0
        self.timer: Optional[EventHandle] = None
        self.rail_index = rail_index


class ReliabilityLayer:
    """Per-session reliability state machine (one per session core)."""

    #: session.stats keys owned by this layer
    STAT_KEYS = (
        "retransmits",
        "rts_retries",
        "timeouts",
        "acks_sent",
        "acks_received",
        "dup_drops",
        "corrupt_drops",
        "gave_up",
        "degraded_events",
    )

    def __init__(self, session: "SessionCore") -> None:
        self.session = session
        self.sim = session.sim
        self.cfg = session.timing.faults
        #: next wire sequence per destination peer
        self._next_seq: dict[int, int] = {}
        #: unacked packets by (peer, wire_seq)
        self._pending: dict[tuple[int, int], _Pending] = {}
        #: receive-side dedup per source: (floor, sparse seqs >= floor);
        #: every wire_seq < floor has been seen
        self._rx_seen: dict[int, tuple[int, set[int]]] = {}
        #: consecutive timeouts per (peer, rail_index): (count, last seen at)
        self._rail_timeouts: dict[tuple[int, int], tuple[int, float]] = {}
        #: degraded rails by (peer, rail_index)
        self._degraded: dict[tuple[int, int], DegradedLink] = {}

    # ------------------------------------------------------------- send side

    def track(self, gate: "Gate", packet: Packet, mode: str, rail_index: int) -> None:
        """Assign a wire sequence number and register the packet for
        retransmission. Call before submitting; :meth:`arm` after."""
        if packet.src_node == packet.dst_node:
            return  # shared-memory loopback is not subject to fabric faults
        peer = packet.dst_node
        seq = self._next_seq.get(peer, 0)
        self._next_seq[peer] = seq + 1
        mark_wire_seq(packet, seq)
        key = (peer, seq)
        self._pending[key] = _Pending(key, gate, packet, mode, rail_index)

    def arm(self, ctx: "ExecContext", packet: Packet) -> None:
        """Start (or restart) the ack timeout for a tracked packet, anchored
        at the instant the charged submission work completes."""
        seq = wire_seq_of(packet)
        if seq is None:
            return  # untracked traffic (shm loopback)
        entry = self._pending.get((packet.dst_node, seq))
        if entry is None:
            return
        base = (
            self.cfg.rts_timeout_us
            if entry.packet.kind in _HANDSHAKE_KINDS
            else self.cfg.ack_timeout_us
        )
        # large frames serialize for longer than the ack round-trip floor:
        # budget two drain times (data out, margin for the ack) on top
        rail = entry.gate.rails[entry.rail_index]
        base += 2.0 * packet.wire_size() / rail.wire_bandwidth()
        timeout = base * (self.cfg.backoff_factor ** entry.attempts)
        entry.timer = self.sim.schedule_at(
            ctx.end + timeout, self._on_timeout, entry.key, label=f"rel.timeout#{seq}"
        )

    def select_rail(self, gate: "Gate", preferred: int) -> int:
        """Rail to use for a submission, honouring degraded-link state."""
        self._purge_degraded()
        if (gate.peer, preferred) not in self._degraded:
            return preferred
        for i in range(len(gate.rails)):
            if (gate.peer, i) not in self._degraded:
                return i
        return preferred  # everything degraded: keep trying the original

    def filter_rails(self, gate: "Gate", infos: list[RailInfo]) -> list[RailInfo]:
        """Rail set offered to the strategy with degraded rails removed
        (rerouting reuses the multirail split/selection machinery)."""
        self._purge_degraded()
        healthy = [info for info in infos if (gate.peer, info.index) not in self._degraded]
        return healthy or infos

    def pending_count(self) -> int:
        return len(self._pending)

    def degraded_links(self) -> list[DegradedLink]:
        self._purge_degraded()
        return list(self._degraded.values())

    # ------------------------------------------------------------ timer path

    def _on_timeout(self, key: tuple[int, int]) -> None:
        """Hardware context: no ACK arrived in time."""
        entry = self._pending.get(key)
        if entry is None:
            return
        session = self.session
        session.stats["timeouts"] += 1
        self._note_rail_timeout(entry)
        if entry.attempts >= self.cfg.max_retries:
            session.stats["gave_up"] += 1
            self._pending.pop(key, None)
            # a DATA send waiting on its ACK must not hang forever once the
            # transport abandons it: release the buffer (best effort — after
            # max_retries deliveries the frame almost certainly arrived and
            # only the ACKs were lost, e.g. a peer that stopped polling)
            self._complete_data_reqs(None, entry)
            session.cq.publish(
                RecoveryCompletion(
                    outcome="gave_up", peer=key[0], wire_seq=key[1], time=self.sim.now
                )
            )
            session.activity_flag.set()
            session._trace_raw(
                "rel.gave_up", f"n{session.node_index}", f"wire_seq={key[1]} ->n{key[0]}"
            )
            return
        entry.attempts += 1
        session._enqueue_op(
            f"retransmit#{key[1]}->n{key[0]}",
            lambda ctx, k=key: self._op_retransmit(ctx, k),
        )
        # engines re-arm their detection paths (idle kick / blocking server)
        session._notify_retransmit()

    def _op_retransmit(self, ctx: "ExecContext", key: tuple[int, int]) -> None:
        """Session op: resubmit one unacked packet (charged to ``ctx``)."""
        entry = self._pending.get(key)
        if entry is None:
            return  # acked while the op sat in the work list
        session = self.session
        if entry.packet.kind in _HANDSHAKE_KINDS:
            session.stats["rts_retries"] += 1
        else:
            session.stats["retransmits"] += 1
            if (
                entry.packet.kind == PacketKind.DATA
                and data_frame(entry.packet).nchunks > 1
            ):
                # pipelined RDV: only this chunk goes out again, not the
                # whole message — count it for the rdv.* observability lane
                session.stats["rdv_chunk_retransmits"] += 1
        entry.rail_index = self.select_rail(entry.gate, entry.rail_index)
        driver = entry.gate.rails[entry.rail_index]
        # the payload still sits in the registered region from the first
        # submission: a retransmit re-posts the descriptor, no host copy
        if entry.mode == "pio":
            driver.submit_pio(ctx, entry.packet)
        elif entry.mode == "control":
            driver.submit_control(ctx, entry.packet)
        elif entry.mode == "zero_copy":
            driver.submit_zero_copy(ctx, entry.packet)
        else:
            driver.submit_eager(ctx, entry.packet, 0)
        self.arm(ctx, entry.packet)
        session._trace_raw(
            "rel.retransmit",
            f"n{session.node_index}",
            f"{entry.packet.kind} wire_seq={key[1]} ->n{key[0]} attempt={entry.attempts}",
        )

    # -------------------------------------------------------- degraded links

    def _decay_window_us(self) -> float:
        """Quiet time after which accumulated rail timeouts go stale.

        A multiple of the ack timeout so the window comfortably spans the
        exponential-backoff gaps of a genuinely dead link (which must still
        trip ``degraded_threshold``) while sporadic timeouts hours apart in
        virtual time no longer count as *consecutive*.
        """
        return self.cfg.ack_timeout_us * self.cfg.degraded_decay_factor

    def _note_rail_timeout(self, entry: _Pending) -> None:
        gate = entry.gate
        rail_key = (gate.peer, entry.rail_index)
        now = self.sim.now
        count, last_at = self._rail_timeouts.get(rail_key, (0, now))
        if count and now - last_at > self._decay_window_us():
            count = 0  # the rail sat quiet past the window: start over
        count += 1
        self._rail_timeouts[rail_key] = (count, now)
        if (
            count >= self.cfg.degraded_threshold
            and len(gate.rails) > 1
            and rail_key not in self._degraded
        ):
            self._degraded[rail_key] = DegradedLink(
                peer=gate.peer,
                rail_index=entry.rail_index,
                since_us=self.sim.now,
                until_us=self.sim.now + self.cfg.degraded_restore_us,
            )
            self.session.stats["degraded_events"] += 1
            self.session._trace_raw(
                "rel.degraded",
                f"n{self.session.node_index}",
                f"rail{entry.rail_index}->n{gate.peer}",
            )

    def _purge_degraded(self) -> None:
        now = self.sim.now
        for key in [k for k, d in self._degraded.items() if d.until_us <= now]:
            del self._degraded[key]
            self._rail_timeouts.pop(key, None)

    def _acked(self, entry: _Pending) -> None:
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        rail_key = (entry.gate.peer, entry.rail_index)
        # a delivery proves the link works again: forget accumulated
        # timeouts and lift any degradation early
        self._rail_timeouts.pop(rail_key, None)
        self._degraded.pop(rail_key, None)

    # ---------------------------------------------------------- receive side

    def on_rx(self, ctx: "ExecContext", driver: "Driver", packet: Packet) -> bool:
        """Filter one arrived packet. Returns False when the packet was
        consumed here (ACK, corrupted, or duplicate) and must not reach the
        protocol handlers."""
        session = self.session
        if is_corrupted(packet):
            # bad checksum: discard silently, whatever the frame claims to
            # be — a corrupted ACK must not cancel retransmission. No ACK
            # means the sender's timeout turns corruption into loss and
            # retransmits.
            ctx.charge(driver.rx_consume_us())
            session.stats["corrupt_drops"] += 1
            return False
        if packet.kind == PacketKind.ACK:
            ctx.charge(driver.rx_consume_us())
            self._on_ack(ctx, packet)
            return False
        wire_seq = wire_seq_of(packet)
        if wire_seq is None:
            return True  # unreliable traffic (shm loopback, legacy frames)
        if self._rx_mark_seen(packet.src_node, wire_seq):
            self._send_ack(ctx, driver, packet.src_node, wire_seq)
            return True
        # duplicate: our ACK may have been the lost frame — acknowledge again
        session.stats["dup_drops"] += 1
        self._send_ack(ctx, driver, packet.src_node, wire_seq)
        return False

    def _send_ack(self, ctx: "ExecContext", driver: "Driver", src: int, wire_seq: int) -> None:
        ack = AckFrame(ack_seq=wire_seq).to_packet(self.session.node_index, src)
        driver.submit_control(ctx, ack)
        self.session.stats["acks_sent"] += 1

    def _on_ack(self, ctx: "ExecContext", packet: Packet) -> None:
        frame = from_packet(packet)
        assert isinstance(frame, AckFrame)  # from_packet checked the kind
        key = (packet.src_node, frame.ack_seq)
        entry = self._pending.pop(key, None)
        if entry is None:
            return  # duplicate ACK for an already-settled packet
        self.session.stats["acks_received"] += 1
        self.session.cq.publish(
            RecoveryCompletion(
                outcome="acked", peer=key[0], wire_seq=key[1], time=self.sim.now
            )
        )
        self._acked(entry)
        self._complete_data_reqs(ctx, entry)

    def _complete_data_reqs(self, ctx: "Optional[ExecContext]", entry: _Pending) -> None:
        """The peer acknowledged a DATA frame (or the transport gave up on
        it): the pinned application buffer is released and the rendezvous
        send completes."""
        if entry.packet.kind != PacketKind.DATA:
            return
        session = self.session
        for req_id in tx_req_ids(entry.packet):
            req = session._sends.get(req_id)
            if req is None:
                continue
            if ctx is not None:
                ctx.schedule_after(0.0, session._complete_send_chunk, req)
            else:  # give-up path runs in timer context: complete directly
                session._complete_send_chunk(req)

    def _rx_mark_seen(self, src: int, wire_seq: int) -> bool:
        """Record ``wire_seq`` from ``src``; False if it was already seen."""
        floor, sparse = self._rx_seen.get(src, (0, set()))
        if wire_seq < floor or wire_seq in sparse:
            return False
        sparse.add(wire_seq)
        while floor in sparse:
            sparse.discard(floor)
            floor += 1
        self._rx_seen[src] = (floor, sparse)
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ReliabilityLayer n{self.session.node_index} pending={len(self._pending)} "
            f"degraded={sorted(self._degraded)}>"
        )
