"""Tag/source matching and per-flow sequence ordering.

Matching model (MPI-like, as the paper's MPI integration target implies):

* a receive is posted for ``(source, tag)`` where either may be the
  wildcard :data:`ANY`;
* incoming message descriptors carry concrete ``(source, tag, seq)``;
* within one ``(source, tag)`` flow, messages are delivered in sequence
  order (NewMadeleine may reorder packets on the wire — multirail split —
  so the receive side owns a reorder buffer, :class:`SequenceTracker`);
* posted receives match in posting order; arrivals match the oldest
  compatible posted receive (MPI non-overtaking semantics per flow).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..errors import MatchingError
from .request import NmRequest

__all__ = ["ANY", "MatchTable", "SequenceTracker"]

#: wildcard for recv posting (matches any source / any tag)
ANY = -1


class MatchTable:
    """Posted-receive table with wildcard support.

    Receives are kept in one posting-ordered deque per exact key plus a
    wildcard list; lookup scans exact first then wildcards, choosing the
    entry with the smallest posting index (MPI ordering).
    """

    def __init__(self) -> None:
        self._posted: deque[tuple[int, NmRequest]] = deque()
        self._counter = 0

    def post(self, req: NmRequest) -> None:
        if req.kind != "recv":
            raise MatchingError(f"only recv requests can be posted, got {req.kind}")
        self._counter += 1
        self._posted.append((self._counter, req))

    def match(self, source: int, tag: int) -> Optional[NmRequest]:
        """Find-and-remove the oldest posted recv compatible with
        ``(source, tag)``; None if nothing matches."""
        for i, (_idx, req) in enumerate(self._posted):
            src_ok = req.peer == ANY or req.peer == source
            tag_ok = req.tag == ANY or req.tag == tag
            if src_ok and tag_ok:
                del self._posted[i]
                return req
        return None

    def cancel(self, req: NmRequest) -> bool:
        for i, (_idx, candidate) in enumerate(self._posted):
            if candidate is req:
                del self._posted[i]
                return True
        return False

    def __len__(self) -> int:
        return len(self._posted)


class SequenceTracker:
    """Per-flow in-order delivery with a reorder buffer.

    ``submit(source, tag, seq, item)`` returns the list of items that become
    deliverable (in order). Out-of-order items are parked until the gap
    fills. Duplicate sequence numbers are a protocol error.
    """

    def __init__(self) -> None:
        self._expected: dict[tuple[int, int], int] = {}
        self._parked: dict[tuple[int, int], dict[int, Any]] = {}
        #: statistics: how many items arrived out of order
        self.reordered = 0

    def next_seq_view(self, source: int, tag: int) -> int:
        """Next expected sequence number for a flow (0-based)."""
        return self._expected.get((source, tag), 0)

    def submit(self, source: int, tag: int, seq: int, item: Any) -> list[Any]:
        key = (source, tag)
        expected = self._expected.get(key, 0)
        if seq < expected:
            raise MatchingError(
                f"duplicate/old sequence {seq} on flow src={source} tag={tag} "
                f"(expected {expected})"
            )
        parked = self._parked.setdefault(key, {})
        if seq in parked:
            raise MatchingError(
                f"duplicate sequence {seq} on flow src={source} tag={tag}"
            )
        if seq != expected:
            self.reordered += 1
            parked[seq] = item
            return []
        out = [item]
        expected += 1
        while expected in parked:
            out.append(parked.pop(expected))
            expected += 1
        self._expected[key] = expected
        if not parked:
            self._parked.pop(key, None)
        return out

    def parked_count(self) -> int:
        return sum(len(p) for p in self._parked.values())
