"""NewMadeleine session core: protocol-agnostic state and dispatch.

One :class:`NmSession` lives on each node (the paper's "one MPI process
per node"). Since the layered refactor it is a thin composition shell: the
protocol state machines live in :class:`repro.nmad.eager.EagerEngine` and
:class:`repro.nmad.rdv.RdvEngine`, while :class:`SessionCore` keeps the
gates (:mod:`repro.nmad.gate`), the matching machinery (posted-receive
table, sequence tracker, unexpected store), the deferred-op work list the
progression engines drain (§2.1, Fig. 1), the **dispatch tables** the
protocol engines register their handlers against (send paths by
``Protocol``, receive handlers by ``PacketKind``, ordered delivery by
frame type, unexpected matches by item type), and the **unified
completion queue** (:class:`repro.nmad.progress.CompletionQueue`) that
wire completions drain through and finished requests are published to.

All CPU costs are charged to the execution context passed in (see
:mod:`repro.nmad.drivers.base`), so the same protocol code is priced
identically whether it runs inline or offloaded — only placement differs,
which is exactly the paper's point.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..config import TimingModel
from ..errors import ProtocolError
from ..marcel.scheduler import MarcelScheduler
from ..marcel.sync import ThreadEvent, ThreadFlag
from ..network.message import Packet, PacketKind
from ..network.registration import MemoryRegistry
from ..sim.kernel import Simulator
from ..sim.tracing import Tracer
from ..topology.machine import Node
from ..topology.numa import NumaModel
from .drivers.base import Driver, ExecContext
from .gate import Gate
from .progress import CompletionQueue, RequestCompletion, WireCompletion
from .reliability import ReliabilityLayer
from .request import NmRequest, Protocol, ReqState
from .strategies import Strategy
from .tags import ANY, MatchTable, SequenceTracker
from .rdv import RDV_STAT_KEYS
from .unexpected import ProbeInfo, UnexpectedStore
from .wire import recycle_wire, tx_req_ids, wire_seq_of

__all__ = ["Gate", "SessionCore", "NmSession"]

#: a deferred operation body: runs under an execution context, returns nothing
OpFn = Callable[[ExecContext], None]
#: a registered send path: (request, gate) -> queue the protocol's work
SendPath = Callable[[NmRequest, "Gate"], None]
#: a registered receive handler: (ctx, driver, packet) -> advance the protocol
RxHandler = Callable[[ExecContext, Driver, Packet], None]
#: a registered ordered-delivery handler: (ctx, driver, frame)
OrderHandler = Callable[[ExecContext, Driver, Any], None]
#: a registered unexpected-match path: (recv request, store item)
UnexpectedPath = Callable[[NmRequest, Any], None]


def _trace_noop(*_args: Any, **_kw: Any) -> None:
    """Instance-level `_trace`/`_trace_raw` replacement for untraced sessions."""
    return None


class SessionCore:
    """Protocol-agnostic per-node session state and dispatch.

    Protocol engines (constructed by :class:`NmSession`) register their
    handlers against the four dispatch tables; the core never inspects
    protocol frames itself.
    """

    #: rendezvous data-phase counters (owned by :mod:`repro.nmad.rdv`,
    #: re-exported here for the ``n{i}.rdv.*`` observability lane)
    RDV_STAT_KEYS = RDV_STAT_KEYS

    def __init__(
        self,
        sim: Simulator,
        scheduler: MarcelScheduler,
        node: Node,
        timing: TimingModel | None = None,
        numa: NumaModel | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.node = node
        self.node_index = node.index
        self.timing = timing or TimingModel()
        self.numa = numa
        self.tracer = tracer
        if tracer is None:
            # hoist the `tracer is None` branch out of the per-event path:
            # untraced sessions dispatch straight to no-ops
            self._trace = _trace_noop  # type: ignore[method-assign]
            self._trace_raw = _trace_noop  # type: ignore[method-assign]
        self.gates: dict[int, Gate] = {}
        self.drivers: list[Driver] = []
        self.registry = MemoryRegistry(self.timing.nic)
        self.match_table = MatchTable()
        self.seq_tracker = SequenceTracker()
        self.unexpected = UnexpectedStore()
        self.ops: deque[tuple[str, OpFn]] = deque()
        #: gates with an open aggregation window: insertion-ordered so the
        #: draining order is deterministic (never a hash-ordered set). The
        #: value closes the window — it flushes the gate under the given
        #: execution context. Counted by :meth:`has_pending_ops` so idle
        #: cores, waiters, and inline drains all see the deferred work.
        self.windowed_gates: dict[Gate, OpFn] = {}
        #: unified completion queue: wire lane + published request records
        self.cq = CompletionQueue()
        #: recycle consumed wire packets/frames (FastPathConfig.pool_wire)
        self._pool_wire = self.timing.fastpath.pool_wire
        #: in-flight sends by req_id (tx completion / CTS lookup)
        self._sends: dict[int, NmRequest] = {}
        # dispatch tables, filled by the protocol engines' constructors
        self._send_paths: dict[Protocol, SendPath] = {}
        self._rx_handlers: dict[str, RxHandler] = {}
        self._order_handlers: dict[type, OrderHandler] = {}
        self._unexpected_paths: dict[type, UnexpectedPath] = {}
        #: level-triggered flag set on any driver activity (baseline waits)
        self.activity_flag = ThreadFlag(scheduler, name=f"n{self.node_index}.nm.activity")
        #: callbacks fired when ops are enqueued (PIOMan wakes idle cores)
        self.on_ops_enqueued: list[Callable[[], None]] = []
        #: callbacks fired when a new driver joins the session
        self.on_driver_added: list[Callable[[Driver], None]] = []
        #: callbacks fired on each completed request
        self.on_request_complete: list[Callable[[NmRequest], None]] = []
        #: callbacks fired when a retransmit timer queued recovery work
        #: (engines re-arm their detection paths: idle kick, blocking server)
        self.on_retransmit_timer: list[Callable[[], None]] = []
        self._core_by_index = {c.core_index: c for c in node.cores}
        # statistics
        self.stats: dict[str, int] = {
            "sends": 0,
            "recvs": 0,
            "pio_sends": 0,
            "eager_sends": 0,
            "rdv_sends": 0,
            "unexpected_eager": 0,
            "unexpected_rts": 0,
            "expected_eager": 0,
            "copies_bytes": 0,
            "ops_executed": 0,
            "completions_handled": 0,
        }
        for key in self.RDV_STAT_KEYS:
            self.stats[key] = 0
        for key in ReliabilityLayer.STAT_KEYS:
            self.stats[key] = 0
        #: ack/retransmit recovery layer (None while the fault model is off,
        #: which keeps the lossless fast path byte-identical to the seed)
        self.reliability: Optional[ReliabilityLayer] = (
            ReliabilityLayer(self) if self.timing.faults.enabled else None
        )

    # ------------------------------------------------------- engine registration

    def register_send_path(self, protocol: Protocol, path: SendPath) -> None:
        """Claim the send path for ``protocol`` (one engine per protocol)."""
        if protocol in self._send_paths:
            raise ProtocolError(f"send path for {protocol} registered twice")
        self._send_paths[protocol] = path

    def register_rx_handler(self, kind: str, handler: RxHandler) -> None:
        """Claim receive dispatch for packets of ``kind``."""
        if kind in self._rx_handlers:
            raise ProtocolError(f"rx handler for {kind} registered twice")
        self._rx_handlers[kind] = handler

    def register_order_handler(self, frame_type: type, handler: OrderHandler) -> None:
        """Claim sequence-ordered delivery of ``frame_type`` descriptors."""
        if frame_type in self._order_handlers:
            raise ProtocolError(f"order handler for {frame_type.__name__} registered twice")
        self._order_handlers[frame_type] = handler

    def register_unexpected_path(self, item_type: type, path: UnexpectedPath) -> None:
        """Claim recv-matching of ``item_type`` unexpected-store items."""
        if item_type in self._unexpected_paths:
            raise ProtocolError(f"unexpected path for {item_type.__name__} registered twice")
        self._unexpected_paths[item_type] = path

    # ------------------------------------------------------------------ wiring

    def add_gate(self, peer: int, rails: list[Driver], strategy: Strategy | None = None) -> Gate:
        if peer in self.gates:
            raise ProtocolError(f"gate to n{peer} already exists")
        gate = Gate(peer, rails, strategy)
        self.gates[peer] = gate
        for rail in rails:
            if rail not in self.drivers:
                self.drivers.append(rail)
                rail.add_activity_listener(self.activity_flag.set)
                for cb in self.on_driver_added:
                    cb(rail)
        return gate

    def gate_to(self, peer: int) -> Gate:
        try:
            return self.gates[peer]
        except KeyError:
            raise ProtocolError(f"n{self.node_index} has no gate to n{peer}") from None

    # ---------------------------------------------------------------- requests

    def make_send(
        self,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        buffer_id: object = None,
        producer_core: Optional[int] = None,
    ) -> NmRequest:
        req = NmRequest("send", self.node_index, peer, tag, size, payload, buffer_id)
        req.posted_at = self.sim.now
        req.producer_core = producer_core
        return req

    def make_recv(
        self,
        source: int,
        tag: int,
        size: int,
        buffer_id: object = None,
    ) -> NmRequest:
        req = NmRequest("recv", self.node_index, source, tag, size, None, buffer_id)
        req.posted_at = self.sim.now
        return req

    def completion_event(self, req: NmRequest) -> ThreadEvent:
        """Lazily created one-shot event for waiters."""
        if req.completion_event is None:
            req.completion_event = ThreadEvent(self.scheduler, name=f"req{req.req_id}.done")
            if req.done:
                req.completion_event.trigger(req)
        return req.completion_event

    # --------------------------------------------------------------- post paths

    def post_send(self, req: NmRequest) -> None:
        """Register a send: choose protocol, hand to its engine. No CPU
        charged here — the caller (engine) charges the registration cost and
        decides when the queued work runs."""
        gate = self.gate_to(req.peer)
        infos = gate.rail_infos()
        if self.reliability is not None:
            infos = self.reliability.filter_rails(gate, infos)
        pio_threshold, rdv_threshold = gate.effective_thresholds(infos)
        req.seq = gate.next_seq(req.tag)
        self.stats["sends"] += 1
        if req.size <= pio_threshold:
            req.protocol = Protocol.PIO
            self.stats["pio_sends"] += 1
        elif req.size <= rdv_threshold:
            req.protocol = Protocol.EAGER
            self.stats["eager_sends"] += 1
        else:
            req.protocol = Protocol.RDV
            self.stats["rdv_sends"] += 1
        req.transition(ReqState.QUEUED)
        self._sends[req.req_id] = req
        path = self._send_paths.get(req.protocol)
        if path is None:  # pragma: no cover - engines cover every protocol
            raise ProtocolError(f"no engine registered for protocol {req.protocol}")
        path(req, gate)
        self._trace("nmad.post_send", req)

    def post_recv(self, req: NmRequest) -> None:
        """Register a receive: match against unexpected arrivals, else post."""
        self.stats["recvs"] += 1
        item = self.unexpected.match(req.peer, req.tag, ANY)
        if item is None:
            self.match_table.post(req)
            self._trace("nmad.post_recv", req)
            return
        path = self._unexpected_paths.get(type(item))
        if path is None:  # pragma: no cover - store only holds registered kinds
            raise ProtocolError(f"unknown unexpected item {item!r}")
        path(req, item)
        self._trace("nmad.post_recv_unexpected", req)

    def probe_unexpected(self, source: int, tag: int) -> Optional[ProbeInfo]:
        """Non-destructive probe of the unexpected store (MPI_Probe
        semantics: the matched item stays buffered)."""
        return self.unexpected.probe(source, tag, ANY)

    # ------------------------------------------------------------------- ops

    def _enqueue_op(self, name: str, fn: OpFn) -> None:
        self.ops.append((name, fn))
        for cb in self.on_ops_enqueued:
            cb()

    def defer(self, name: str, fn: OpFn) -> None:
        """Queue ``fn`` as a deferred op for the progression engines.

        Public entry point for layers above nmad (the MPI nbc schedule
        progressor, RMA window servicing): the op runs under whichever
        execution context next drains the queue — an idle core under
        PIOMan, the calling thread's next library call under the
        sequential engine — and charges its CPU there.
        """
        self._enqueue_op(name, fn)

    def _notify_retransmit(self) -> None:
        """Timer (hardware) context: a retransmit op was just queued. Wake
        baseline waiters blocked on the activity flag and give engines a
        chance to re-arm interrupt-based detection."""
        self.activity_flag.set()
        for cb in self.on_retransmit_timer:
            cb()

    def has_pending_ops(self) -> bool:
        return bool(self.ops) or bool(self.windowed_gates)

    def has_completions(self) -> bool:
        return self.cq.depth > 0 or any(d.has_completions() for d in self.drivers)

    def has_work(self) -> bool:
        return self.has_pending_ops() or self.has_completions()

    def progress(self, ctx: ExecContext, max_ops: Optional[int] = None, poll: bool = True) -> bool:
        """Execute deferred ops, then poll completion queues.

        Charges all CPU to ``ctx``. Returns True if anything was done.
        """
        did = False
        count = 0
        while max_ops is None or count < max_ops:
            if self.ops:
                name, fn = self.ops.popleft()
                fn(ctx)
            elif self.windowed_gates:
                # no queued op left: close the oldest open aggregation
                # window (insertion order keeps this deterministic)
                gate = next(iter(self.windowed_gates))
                flush = self.windowed_gates.pop(gate)
                flush(ctx)
            else:
                break
            self.stats["ops_executed"] += 1
            did = True
            count += 1
        if poll:
            did |= self.poll_completions(ctx)
        return did

    def poll_completions(self, ctx: ExecContext, max_events: int = 16) -> bool:
        """Poll every driver once; dispatch what surfaced.

        Each driver's harvest goes through the unified completion queue's
        wire lane — pushed, then drained straight through the receive
        dispatch table. Push-then-drain per driver keeps the handling order
        identical to dispatching each record inline (handlers never produce
        wire completions synchronously), while giving observability and
        backpressure a single queue to watch.
        """
        did = False
        pool_wire = self._pool_wire
        for driver in self.drivers:
            driver.poll_into(ctx, self.cq, max_events)
            while True:
                wc = self.cq.pop_wire()
                if wc is None:
                    break
                self._dispatch_wire(ctx, wc)
                self.stats["completions_handled"] += 1
                did = True
                if pool_wire:
                    # the completion record was this packet's last protocol
                    # holder in the common case: drop it and recycle. The
                    # refcount guard inside vetoes anything still referenced
                    # (reliability tracking, the peer's unpolled record).
                    packet = wc.packet
                    wc = None
                    recycle_wire(packet)
        return did

    # ------------------------------------------------------ completion handling

    def _dispatch_wire(self, ctx: ExecContext, wc: WireCompletion) -> None:
        """Route one wire completion: TX drains complete sends; arrived
        packets pass the reliability filter, then the kind dispatch table."""
        packet = wc.packet
        if wc.event == "tx_done":
            self._on_tx_done(ctx, packet)
            return
        if self.reliability is not None and not self.reliability.on_rx(ctx, wc.driver, packet):
            return  # consumed at the wire level: ACK, corrupted, or duplicate
        handler = self._rx_handlers.get(packet.kind)
        if handler is None:  # pragma: no cover - ACKs are consumed above
            raise ProtocolError(f"unhandled packet kind {packet.kind}")
        handler(ctx, wc.driver, packet)

    def _on_tx_done(self, ctx: ExecContext, packet: Packet) -> None:
        # Only the rendezvous DATA leg completes on DMA drain: the
        # application buffer is involved until the NIC has read it all.
        # PIO/eager completed at submission; control frames complete nothing.
        if packet.kind != PacketKind.DATA:
            return
        if self.reliability is not None and wire_seq_of(packet) is not None:
            # recovery pins the application buffer until the peer
            # acknowledges (it is the retransmission source): the send
            # completes on ACK — or on give-up — not at DMA drain
            return
        for req_id in tx_req_ids(packet):
            req = self._sends.get(req_id)
            if req is None:
                continue
            ctx.schedule_after(0.0, self._complete_send_chunk, req)

    def _complete_send_chunk(self, req: NmRequest) -> None:
        if not req.tx_chunk_done():
            return  # more chunks still in flight
        if req.done:
            return
        if req.state != ReqState.COMPLETED:
            self._complete_req(req)

    def deliver_in_order(self, ctx: ExecContext, driver: Driver, item: Any) -> None:
        """Route a sequence-ordered descriptor to its protocol handler.

        The reorder buffer interleaves eager and RTS frames of one flow, so
        each drained item is re-dispatched by frame type.
        """
        handler = self._order_handlers.get(type(item))
        if handler is None:  # pragma: no cover - engines cover every frame
            raise ProtocolError(f"no ordered-delivery handler for {item!r}")
        handler(ctx, driver, item)

    # ----------------------------------------------------------------- helpers

    def _numa_factor(self, ctx: ExecContext, producer_core: Optional[int]) -> float:
        if self.numa is None or producer_core is None:
            return 1.0
        executor = self._core_by_index.get(getattr(ctx, "core_index", None))
        producer = self._core_by_index.get(producer_core)
        if executor is None or producer is None:
            return 1.0
        return self.numa.copy_factor(producer, executor)

    # -------------------------------------------------------------- completion

    def complete_local(self, req: NmRequest) -> None:
        """Complete a locally-owned request that never touches the wire.

        Higher layers synthesize proxy requests (e.g. one per nbc
        collective schedule) so multi-step operations plug into the
        ordinary wait/wait_any/event machinery; this publishes the
        completion exactly like a wire-backed request. Idempotent-hostile
        like :meth:`NmRequest.complete`: completing twice is an error.
        """
        if req.done:
            raise ProtocolError(f"request {req.req_id} already completed")
        self._complete_req(req)

    def _complete_req(self, req: NmRequest) -> None:
        if req.done:  # split chunks may race with direct completion paths
            return
        if req.kind == "send":
            self._sends.pop(req.req_id, None)
        req.complete(self.sim.now)
        self.cq.publish(RequestCompletion(req=req, time=self.sim.now))
        for cb in self.on_request_complete:
            cb(req)
        self._trace("nmad.complete", req)
        # completing a request is activity too: waiters polling on the
        # session flag must re-check
        self.activity_flag.set()

    # ------------------------------------------------------------------- misc

    def _trace(self, category: str, req: NmRequest) -> None:
        # sessions built without a tracer rebind this to `_trace_noop`
        assert self.tracer is not None
        self.tracer.record(
            self.sim.now, category, f"n{self.node_index}", f"req#{req.req_id}",
            kind=req.kind, peer=req.peer, tag=req.tag, size=req.size, state=req.state,
        )

    def _trace_raw(self, category: str, where: str, label: str) -> None:
        assert self.tracer is not None
        self.tracer.record(self.sim.now, category, where, label)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} n{self.node_index} gates={sorted(self.gates)} ops={len(self.ops)}>"


class NmSession(SessionCore):
    """Per-node communication session: the core plus its protocol engines."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: MarcelScheduler,
        node: Node,
        timing: TimingModel | None = None,
        numa: NumaModel | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(sim, scheduler, node, timing=timing, numa=numa, tracer=tracer)
        # engine construction registers the dispatch-table entries
        from .eager import EagerEngine
        from .rdv import RdvEngine

        #: eager/PIO protocol engine (small buffered sends)
        self.eager = EagerEngine(self)
        #: rendezvous protocol engine (RTS/CTS handshake + data phase)
        self.rdv = RdvEngine(self)
