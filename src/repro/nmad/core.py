"""NewMadeleine session: gates, protocol state machines, progression.

One :class:`NmSession` lives on each node (the paper's "one MPI process per
node"). It owns:

* **gates** to peer nodes (and to itself, through the shared-memory
  channel), each with its rails (drivers) and its optimizer strategy;
* the **matching machinery** — posted-receive table, per-flow sequence
  tracker with reorder buffer, unexpected store, multirail reassembly;
* the **work list** (``ops``) — deferred operations (packet flushes,
  rendezvous handshakes, unexpected copy-outs). *Who* executes ops and
  *when* is the progression engine's business: the sequential baseline
  drains them on the application thread inside library calls; PIOMan
  drains them from idle cores/tasklets (§2.1, Fig. 1);
* the **completion handling** — polling driver completion queues and
  advancing the eager / rendezvous state machines.

All CPU costs are charged to the execution context passed in (see
:mod:`repro.nmad.drivers.base`), so the same protocol code is priced
identically whether it runs inline or offloaded — only placement differs,
which is exactly the paper's point.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..config import TimingModel
from ..errors import ProtocolError, RequestError
from ..marcel.scheduler import MarcelScheduler
from ..marcel.sync import ThreadEvent, ThreadFlag
from ..network.message import Packet, PacketKind
from ..network.registration import MemoryRegistry
from ..sim.kernel import Simulator
from ..sim.tracing import Tracer
from ..topology.machine import Node
from ..topology.numa import NumaModel
from .drivers.base import Driver
from .rdv import PayloadAssembler, RdvChunk, RdvPlanner, classify_payload, slice_raw
from .reliability import ReliabilityLayer
from .request import NmRequest, Protocol, ReqState
from .strategies import DefaultStrategy, Strategy
from .strategies.base import RailInfo
from .tags import ANY, MatchTable, SequenceTracker
from .unexpected import ProbeInfo, UnexpectedEager, UnexpectedRts, UnexpectedStore

__all__ = ["Gate", "NmSession"]


def _trace_noop(*_args: Any, **_kw: Any) -> None:
    """Instance-level `_trace`/`_trace_raw` replacement for untraced sessions."""
    return None


class Gate:
    """Connection from this session to one peer node."""

    def __init__(self, peer: int, rails: list[Driver], strategy: Strategy | None = None) -> None:
        if not rails:
            raise ProtocolError(f"gate to n{peer} needs at least one rail")
        self.peer = peer
        self.rails = rails
        self.strategy = strategy or DefaultStrategy()
        self._send_seq: dict[int, int] = {}
        #: True while a flush op for this gate sits in the session work list
        self.flush_pending = False
        #: packet plans already formed by the strategy, awaiting submission
        #: (one wire packet is submitted per flush-op execution — §2.1:
        #: "the messages are submitted once at a time")
        self.pending_plans: deque = deque()

    def next_seq(self, tag: int) -> int:
        seq = self._send_seq.get(tag, 0)
        self._send_seq[tag] = seq + 1
        return seq

    def rail_infos(self) -> list[RailInfo]:
        return [
            RailInfo(
                index=i,
                pio_threshold=r.pio_threshold(),
                rdv_threshold=r.rdv_threshold(),
                bandwidth=r.wire_bandwidth(),
                chunk_hint=r.rdv_chunk_bytes(),
            )
            for i, r in enumerate(self.rails)
        ]

    def effective_thresholds(self, infos: list[RailInfo] | None = None) -> tuple[int, int]:
        """Gate-wide protocol thresholds: the (pio, rdv) cutoffs that are
        safe on *every* given rail.

        Protocol choice happens before rail choice — reliability rerouting
        or RDV striping may carry the message on any rail — so the session
        picks the protocol a message qualifies for on all of them (the
        minimum of each threshold). Identical to ``rails[0]`` for
        single-rail and homogeneous gates.
        """
        if infos is None:
            infos = self.rail_infos()
        return (
            min(r.pio_threshold for r in infos),
            min(r.rdv_threshold for r in infos),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Gate ->n{self.peer} rails={[r.name for r in self.rails]}>"


class NmSession:
    """Per-node communication session."""

    #: rendezvous data-phase counters (exported as ``n{i}.rdv.*`` through
    #: the observability registry — see ``harness/runner.py``)
    RDV_STAT_KEYS = (
        "rdv_chunks_sent",
        "rdv_chunks_received",
        "rdv_chunked_sends",
        "rdv_striped_sends",
        "rdv_chunk_retransmits",
    )

    def __init__(
        self,
        sim: Simulator,
        scheduler: MarcelScheduler,
        node: Node,
        timing: TimingModel | None = None,
        numa: NumaModel | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.node = node
        self.node_index = node.index
        self.timing = timing or TimingModel()
        self.numa = numa
        self.tracer = tracer
        if tracer is None:
            # hoist the `tracer is None` branch out of the per-event path:
            # untraced sessions dispatch straight to no-ops
            self._trace = _trace_noop  # type: ignore[method-assign]
            self._trace_raw = _trace_noop  # type: ignore[method-assign]
        self.gates: dict[int, Gate] = {}
        self.drivers: list[Driver] = []
        self.registry = MemoryRegistry(self.timing.nic)
        self.match_table = MatchTable()
        self.seq_tracker = SequenceTracker()
        self.unexpected = UnexpectedStore()
        self.ops: deque[tuple[str, Callable[[Any], None]]] = deque()
        #: in-flight sends by req_id (tx completion / CTS lookup)
        self._sends: dict[int, NmRequest] = {}
        #: rendezvous receives waiting for DATA, by recv req_id
        self._rdv_recvs: dict[int, NmRequest] = {}
        #: chunked rendezvous reassembly state, by recv req_id
        self._rdv_assembly: dict[int, PayloadAssembler] = {}
        #: rendezvous data-phase chunk/stripe planner
        self._rdv_planner = RdvPlanner(self.timing.rdv)
        #: multirail reassembly: (src, send_req_id) -> accumulated state
        self._reassembly: dict[tuple[int, int], dict[str, Any]] = {}
        #: level-triggered flag set on any driver activity (baseline waits)
        self.activity_flag = ThreadFlag(scheduler, name=f"n{self.node_index}.nm.activity")
        #: callbacks fired when ops are enqueued (PIOMan wakes idle cores)
        self.on_ops_enqueued: list[Callable[[], None]] = []
        #: callbacks fired when a new driver joins the session
        self.on_driver_added: list[Callable[[Driver], None]] = []
        #: callbacks fired on each completed request
        self.on_request_complete: list[Callable[[NmRequest], None]] = []
        #: callbacks fired when a retransmit timer queued recovery work
        #: (engines re-arm their detection paths: idle kick, blocking server)
        self.on_retransmit_timer: list[Callable[[], None]] = []
        self._core_by_index = {c.core_index: c for c in node.cores}
        # statistics
        self.stats: dict[str, int] = {
            "sends": 0,
            "recvs": 0,
            "pio_sends": 0,
            "eager_sends": 0,
            "rdv_sends": 0,
            "unexpected_eager": 0,
            "unexpected_rts": 0,
            "expected_eager": 0,
            "copies_bytes": 0,
            "ops_executed": 0,
            "completions_handled": 0,
        }
        for key in self.RDV_STAT_KEYS:
            self.stats[key] = 0
        for key in ReliabilityLayer.STAT_KEYS:
            self.stats[key] = 0
        #: ack/retransmit recovery layer (None while the fault model is off,
        #: which keeps the lossless fast path byte-identical to the seed)
        self.reliability: Optional[ReliabilityLayer] = (
            ReliabilityLayer(self) if self.timing.faults.enabled else None
        )

    # ------------------------------------------------------------------ wiring

    def add_gate(self, peer: int, rails: list[Driver], strategy: Strategy | None = None) -> Gate:
        if peer in self.gates:
            raise ProtocolError(f"gate to n{peer} already exists")
        gate = Gate(peer, rails, strategy)
        self.gates[peer] = gate
        for rail in rails:
            if rail not in self.drivers:
                self.drivers.append(rail)
                rail.add_activity_listener(self.activity_flag.set)
                for cb in self.on_driver_added:
                    cb(rail)
        return gate

    def gate_to(self, peer: int) -> Gate:
        try:
            return self.gates[peer]
        except KeyError:
            raise ProtocolError(f"n{self.node_index} has no gate to n{peer}") from None

    # ---------------------------------------------------------------- requests

    def make_send(
        self,
        peer: int,
        tag: int,
        size: int,
        payload: Any = None,
        buffer_id: object = None,
        producer_core: Optional[int] = None,
    ) -> NmRequest:
        req = NmRequest("send", self.node_index, peer, tag, size, payload, buffer_id)
        req.posted_at = self.sim.now
        req.producer_core = producer_core
        return req

    def make_recv(
        self,
        source: int,
        tag: int,
        size: int,
        buffer_id: object = None,
    ) -> NmRequest:
        req = NmRequest("recv", self.node_index, source, tag, size, None, buffer_id)
        req.posted_at = self.sim.now
        return req

    def completion_event(self, req: NmRequest) -> ThreadEvent:
        """Lazily created one-shot event for waiters."""
        if req.completion_event is None:
            req.completion_event = ThreadEvent(self.scheduler, name=f"req{req.req_id}.done")
            if req.done:
                req.completion_event.trigger(req)
        return req.completion_event

    # --------------------------------------------------------------- post paths

    def post_send(self, req: NmRequest) -> None:
        """Register a send: choose protocol, queue work. No CPU charged here
        — the caller (engine) charges the registration cost and decides when
        the queued work runs."""
        gate = self.gate_to(req.peer)
        infos = gate.rail_infos()
        if self.reliability is not None:
            infos = self.reliability.filter_rails(gate, infos)
        pio_threshold, rdv_threshold = gate.effective_thresholds(infos)
        req.seq = gate.next_seq(req.tag)
        self.stats["sends"] += 1
        if req.size <= pio_threshold:
            req.protocol = Protocol.PIO
            self.stats["pio_sends"] += 1
        elif req.size <= rdv_threshold:
            req.protocol = Protocol.EAGER
            self.stats["eager_sends"] += 1
        else:
            req.protocol = Protocol.RDV
            self.stats["rdv_sends"] += 1
        req.transition(ReqState.QUEUED)
        self._sends[req.req_id] = req
        if req.protocol == Protocol.RDV:
            self._enqueue_op(f"send_rts#{req.req_id}", lambda ctx, r=req: self._op_send_rts(ctx, r))
        else:
            gate.strategy.push(req)
            if not gate.flush_pending:
                gate.flush_pending = True
                self._enqueue_op(f"flush->n{gate.peer}", lambda ctx, g=gate: self._op_flush_gate(ctx, g))
        self._trace("nmad.post_send", req)

    def post_recv(self, req: NmRequest) -> None:
        """Register a receive: match against unexpected arrivals, else post."""
        self.stats["recvs"] += 1
        item = self.unexpected.match(req.peer, req.tag, ANY)
        if item is None:
            self.match_table.post(req)
            self._trace("nmad.post_recv", req)
            return
        if isinstance(item, UnexpectedEager):
            self._enqueue_op(
                f"copy_out#{req.req_id}",
                lambda ctx, r=req, it=item: self._op_copy_out(ctx, r, it),
            )
        elif isinstance(item, UnexpectedRts):
            self._enqueue_op(
                f"answer_rts#{req.req_id}",
                lambda ctx, r=req, it=item: self._op_answer_rts(ctx, r, it.source, it.send_req_id, it.size),
            )
        else:  # pragma: no cover - store only holds the two kinds
            raise ProtocolError(f"unknown unexpected item {item!r}")
        self._trace("nmad.post_recv_unexpected", req)

    def probe_unexpected(self, source: int, tag: int) -> Optional[ProbeInfo]:
        """Non-destructive probe of the unexpected store.

        Returns a :class:`repro.nmad.unexpected.ProbeInfo` for the oldest
        arrival a recv posted with ``(source, tag)`` would match, or None.
        The item stays in the store (MPI_Probe semantics).
        """
        for item in self.unexpected._items:
            src_ok = source == ANY or item.source == source
            tag_ok = tag == ANY or item.tag == tag
            if src_ok and tag_ok:
                return ProbeInfo(
                    source=item.source,
                    tag=item.tag,
                    size=item.size,
                    rdv=isinstance(item, UnexpectedRts),
                )
        return None

    # ------------------------------------------------------------------- ops

    def _enqueue_op(self, name: str, fn: Callable[[Any], None]) -> None:
        self.ops.append((name, fn))
        for cb in self.on_ops_enqueued:
            cb()

    def _notify_retransmit(self) -> None:
        """Timer (hardware) context: a retransmit op was just queued. Wake
        baseline waiters blocked on the activity flag and give engines a
        chance to re-arm interrupt-based detection."""
        self.activity_flag.set()
        for cb in self.on_retransmit_timer:
            cb()

    def has_pending_ops(self) -> bool:
        return bool(self.ops)

    def has_completions(self) -> bool:
        return any(d.has_completions() for d in self.drivers)

    def has_work(self) -> bool:
        return self.has_pending_ops() or self.has_completions()

    def progress(self, ctx, max_ops: Optional[int] = None, poll: bool = True) -> bool:
        """Execute deferred ops, then poll completion queues.

        Charges all CPU to ``ctx``. Returns True if anything was done.
        """
        did = False
        count = 0
        while self.ops and (max_ops is None or count < max_ops):
            name, fn = self.ops.popleft()
            fn(ctx)
            self.stats["ops_executed"] += 1
            did = True
            count += 1
        if poll:
            did |= self.poll_completions(ctx)
        return did

    def poll_completions(self, ctx, max_events: int = 16) -> bool:
        """Poll every driver once; handle what surfaced."""
        did = False
        for driver in self.drivers:
            ctx.charge(driver.poll_cpu_us())
            for rec in driver.poll(max_events):
                self._handle_completion(ctx, driver, rec)
                self.stats["completions_handled"] += 1
                did = True
        return did

    # ----------------------------------------------------------- op bodies (TX)

    def _numa_factor(self, ctx, producer_core: Optional[int]) -> float:
        if self.numa is None or producer_core is None:
            return 1.0
        executor = self._core_by_index.get(getattr(ctx, "core_index", None))
        producer = self._core_by_index.get(producer_core)
        if executor is None or producer is None:
            return 1.0
        return self.numa.copy_factor(producer, executor)

    def _op_flush_gate(self, ctx, gate: Gate) -> None:
        """Submit ONE wire packet; requeue if the gate still has more.

        Draining the strategy happens up front (so aggregation sees the
        whole burst), but submissions are one-per-event: concurrent idle
        cores and waiting threads interleave on the remaining packets
        instead of one executor hogging an entire burst.
        """
        gate.flush_pending = False
        if not gate.pending_plans:
            infos = gate.rail_infos()
            if self.reliability is not None:
                infos = self.reliability.filter_rails(gate, infos)
            gate.pending_plans.extend(gate.strategy.take_plans(infos))
        if not gate.pending_plans:
            return
        plans = [gate.pending_plans.popleft()]
        # sends pushed while earlier plans were queued are still in the
        # strategy — the requeue must cover them too, or they are lost
        if (gate.pending_plans or gate.strategy.pending_count() > 0) and not gate.flush_pending:
            gate.flush_pending = True
            self._enqueue_op(
                f"flush->n{gate.peer}", lambda c, g=gate: self._op_flush_gate(c, g)
            )
        for plan in plans:
            driver = gate.rails[plan.rail_index]
            entries_hdr = []
            tx_reqs = []
            for e in plan.entries:
                entries_hdr.append(
                    {
                        "req_id": e.req.req_id,
                        "src": self.node_index,
                        "tag": e.req.tag,
                        "seq": e.req.seq,
                        "size": e.req.size,
                        "offset": e.offset,
                        "length": e.length,
                        "nchunks": e.nchunks,
                        "payload": e.req.payload,
                    }
                )
                tx_reqs.append(e.req.req_id)
                e.req.init_tx_chunks(e.nchunks)
            packet = Packet(
                kind=PacketKind.PIO if plan.mode == "pio" else PacketKind.EAGER,
                src_node=self.node_index,
                dst_node=gate.peer,
                payload_size=plan.payload_size(),
                headers={"entries": entries_hdr, "tx_reqs": tx_reqs},
            )
            factor = max(
                (self._numa_factor(ctx, e.req.producer_core) for e in plan.entries),
                default=1.0,
            )
            for e in plan.entries:
                if e.req.state == ReqState.QUEUED:
                    e.req.transition(ReqState.SUBMITTED)
                    e.req.submitted_at = ctx.end
            if self.reliability is not None:
                self.reliability.track(gate, packet, plan.mode, plan.rail_index)
            if plan.mode == "pio":
                driver.submit_pio(ctx, packet)
            else:
                self.stats["copies_bytes"] += plan.payload_size()
                driver.submit_eager(ctx, packet, plan.payload_size(), factor)
            if self.reliability is not None:
                self.reliability.arm(ctx, packet)
            # Both PIO and eager are *buffered* sends: the request completes
            # as soon as the CPU pushed/copied the payload (MX semantics —
            # the application buffer is reusable immediately). Only the
            # zero-copy rendezvous DATA completes at DMA drain.
            for e in plan.entries:
                ctx.schedule_after(0.0, self._complete_send_chunk, e.req)
            self._trace_raw("nmad.submit", f"gate->n{gate.peer}", f"{plan.mode} {plan.payload_size()}B")

    def _op_send_rts(self, ctx, req: NmRequest) -> None:
        gate = self.gate_to(req.peer)
        rail_index = 0
        if self.reliability is not None:
            rail_index = self.reliability.select_rail(gate, 0)
        driver = gate.rails[rail_index]
        if not driver.supports_zero_copy:
            # rendezvous without zero-copy support still bounds unexpected
            # buffering; the DATA leg will be a copy send (TCP driver).
            pass
        packet = Packet(
            kind=PacketKind.RTS,
            src_node=self.node_index,
            dst_node=req.peer,
            payload_size=0,
            headers={
                "send_req_id": req.req_id,
                "src": self.node_index,
                "tag": req.tag,
                "seq": req.seq,
                "size": req.size,
            },
        )
        req.transition(ReqState.RTS_SENT)
        req.submitted_at = ctx.end
        if self.reliability is not None:
            self.reliability.track(gate, packet, "control", rail_index)
        driver.submit_control(ctx, packet)
        if self.reliability is not None:
            self.reliability.arm(ctx, packet)
        self._trace("nmad.rts", req)

    def _op_copy_out(self, ctx, req: NmRequest, item: UnexpectedEager) -> None:
        """Second copy of the unexpected path: unexpected buffer → app."""
        ctx.charge(self.timing.host.memcpy_us(item.size))
        self.stats["copies_bytes"] += item.size
        req.data = item.payload
        req.received_size = item.size
        req.source = item.source
        ctx.schedule_after(0.0, self._complete_req, req)
        self._trace("nmad.copy_out", req)

    def _op_answer_rts(self, ctx, recv_req: NmRequest, source: int, send_req_id: int, size: int) -> None:
        """Answer a rendezvous handshake: register the application buffer
        and send the CTS (§2.3 operations (b)/(c))."""
        gate = self.gate_to(source)
        rail_index = 0
        if self.reliability is not None:
            rail_index = self.reliability.select_rail(gate, 0)
        driver = gate.rails[rail_index]
        if driver.supports_zero_copy:
            ctx.charge(self.registry.register(recv_req.buffer_id, size))
        packet = Packet(
            kind=PacketKind.CTS,
            src_node=self.node_index,
            dst_node=source,
            payload_size=0,
            headers={"send_req_id": send_req_id, "recv_req_id": recv_req.req_id},
        )
        recv_req.transition(ReqState.DATA_WAIT)
        recv_req.received_size = size
        recv_req.source = source
        self._rdv_recvs[recv_req.req_id] = recv_req
        if self.reliability is not None:
            self.reliability.track(gate, packet, "control", rail_index)
        driver.submit_control(ctx, packet)
        if self.reliability is not None:
            self.reliability.arm(ctx, packet)
        self._trace("nmad.cts", recv_req)

    # ------------------------------------------------------ completion handling

    def _handle_completion(self, ctx, driver: Driver, rec) -> None:
        packet: Packet = rec.packet
        if rec.event == "tx_done":
            self._on_tx_done(ctx, packet)
            return
        if self.reliability is not None and not self.reliability.on_rx(ctx, driver, packet):
            return  # consumed at the wire level: ACK, corrupted, or duplicate
        if packet.kind in (PacketKind.EAGER, PacketKind.PIO):
            self._on_rx_eager(ctx, driver, packet)
        elif packet.kind == PacketKind.RTS:
            self._on_rx_rts(ctx, driver, packet)
        elif packet.kind == PacketKind.CTS:
            self._on_rx_cts(ctx, driver, packet)
        elif packet.kind == PacketKind.DATA:
            self._on_rx_data(ctx, driver, packet)
        else:  # pragma: no cover - ACKs are consumed by the reliability layer
            raise ProtocolError(f"unhandled packet kind {packet.kind}")

    def _on_tx_done(self, ctx, packet: Packet) -> None:
        # Only the rendezvous DATA leg completes on DMA drain: the
        # application buffer is involved until the NIC has read it all.
        # PIO/eager completed at submission; control frames complete nothing.
        if packet.kind != PacketKind.DATA:
            return
        if self.reliability is not None and "wire_seq" in packet.headers:
            # recovery pins the application buffer until the peer
            # acknowledges (it is the retransmission source): the send
            # completes on ACK — or on give-up — not at DMA drain
            return
        for req_id in packet.headers.get("tx_reqs", ()):
            req = self._sends.get(req_id)
            if req is None:
                continue
            ctx.schedule_after(0.0, self._complete_send_chunk, req)

    def _complete_send_chunk(self, req: NmRequest) -> None:
        if not req.tx_chunk_done():
            return  # more chunks still in flight
        if req.done:
            return
        if req.state != ReqState.COMPLETED:
            self._complete_req(req)

    def _deliver_in_order(self, ctx, driver: Driver, item: dict[str, Any]) -> None:
        """Route a sequence-ordered descriptor to its protocol handler.

        The reorder buffer interleaves eager and RTS descriptors of one
        flow, so each drained item must be re-dispatched by kind.
        """
        if item.get("rts"):
            self._deliver_rts(ctx, driver, item)
        else:
            self._deliver_eager(ctx, driver, item)

    def _on_rx_eager(self, ctx, driver: Driver, packet: Packet) -> None:
        for entry in packet.headers["entries"]:
            descriptor = entry
            if entry["nchunks"] > 1:
                descriptor = self._reassemble(entry)
                if descriptor is None:
                    continue
            for item in self.seq_tracker.submit(
                descriptor["src"], descriptor["tag"], descriptor["seq"], descriptor
            ):
                self._deliver_in_order(ctx, driver, item)

    def _reassemble(self, entry: dict[str, Any]) -> Optional[dict[str, Any]]:
        key = (entry["src"], entry["req_id"])
        state = self._reassembly.setdefault(key, {"received": 0})
        state["received"] += entry["length"]
        if entry["offset"] == 0:
            state["payload"] = entry["payload"]
        if state["received"] < entry["size"]:
            return None
        if state["received"] > entry["size"]:
            raise ProtocolError(
                f"reassembly overflow for send#{entry['req_id']}: "
                f"{state['received']} > {entry['size']}"
            )
        self._reassembly.pop(key)
        return {
            "src": entry["src"],
            "tag": entry["tag"],
            "seq": entry["seq"],
            "size": entry["size"],
            "length": entry["size"],
            "payload": state.get("payload"),
            "req_id": entry["req_id"],
            "nchunks": 1,
            "offset": 0,
        }

    def _deliver_eager(self, ctx, driver: Driver, d: dict[str, Any]) -> None:
        req = self.match_table.match(d["src"], d["tag"])
        ctx.charge(driver.rx_consume_us())
        if req is not None:
            # expected: the NIC placed the data straight into the app buffer
            self.stats["expected_eager"] += 1
            if d["size"] > req.size:
                raise RequestError(
                    f"message of {d['size']}B overflows posted recv of {req.size}B"
                )
            req.data = d["payload"]
            req.received_size = d["size"]
            req.source = d["src"]
            ctx.schedule_after(0.0, self._complete_req, req)
            self._trace("nmad.recv_expected", req)
        else:
            # unexpected: pay the copy into the unexpected buffer now
            self.stats["unexpected_eager"] += 1
            ctx.charge(self.timing.host.memcpy_us(d["size"]))
            self.stats["copies_bytes"] += d["size"]
            self.unexpected.add(
                UnexpectedEager(
                    source=d["src"],
                    tag=d["tag"],
                    seq=d["seq"],
                    size=d["size"],
                    payload=d["payload"],
                    arrived_at=self.sim.now,
                )
            )

    def _on_rx_rts(self, ctx, driver: Driver, packet: Packet) -> None:
        h = packet.headers
        descriptor = {
            "src": h["src"],
            "tag": h["tag"],
            "seq": h["seq"],
            "size": h["size"],
            "send_req_id": h["send_req_id"],
            "rts": True,
        }
        for item in self.seq_tracker.submit(h["src"], h["tag"], h["seq"], descriptor):
            self._deliver_in_order(ctx, driver, item)

    def _deliver_rts(self, ctx, driver: Driver, d: dict[str, Any]) -> None:
        req = self.match_table.match(d["src"], d["tag"])
        ctx.charge(driver.rx_consume_us())
        if req is not None:
            self._op_answer_rts(ctx, req, d["src"], d["send_req_id"], d["size"])
        else:
            self.stats["unexpected_rts"] += 1
            self.unexpected.add(
                UnexpectedRts(
                    source=d["src"],
                    tag=d["tag"],
                    seq=d["seq"],
                    size=d["size"],
                    send_req_id=d["send_req_id"],
                    arrived_at=self.sim.now,
                )
            )

    def _on_rx_cts(self, ctx, driver: Driver, packet: Packet) -> None:
        """Sender side: the receiver is ready — send the data zero-copy
        (§2.3 operation (d)).

        With chunking configured (``TimingModel.rdv``), the data phase is
        planned as pipeline chunks striped across the gate's healthy rails:
        chunk 0 goes out here (as the one-shot DATA always did), the rest
        are queued as ops so idle cores register+submit chunk *k+1* while
        the NIC drains chunk *k*. With the default config the plan is one
        chunk on one rail — byte-identical to the seed's behaviour.
        """
        req = self._sends.get(packet.headers["send_req_id"])
        if req is None or req.state != ReqState.RTS_SENT:
            if self.reliability is not None:
                # stale CTS (the wire-seq dedup normally filters these, but
                # stay tolerant): the rendezvous already moved on
                return
            raise ProtocolError(f"CTS for unknown send #{packet.headers['send_req_id']}")
        gate = self.gate_to(req.peer)
        infos = gate.rail_infos()
        if self.reliability is not None:
            infos = self.reliability.filter_rails(gate, infos)
        chunks = self._rdv_planner.plan(req.size, infos)
        nchunks = len(chunks)
        recv_req_id = packet.headers["recv_req_id"]
        req.transition(ReqState.DATA_SENDING)
        req.init_tx_chunks(nchunks)
        mode, raw, meta = ("none", None, None)
        if nchunks > 1:
            self.stats["rdv_chunked_sends"] += 1
            if len({c.rail_index for c in chunks}) > 1:
                self.stats["rdv_striped_sends"] += 1
            mode, raw, meta = classify_payload(req.payload, req.size)
        # chunk 0 is charged to the CTS handler, like the one-shot DATA was
        self._op_send_rdv_chunk(ctx, req, recv_req_id, chunks[0], nchunks, mode, raw, meta)
        for chunk in chunks[1:]:
            self._enqueue_op(
                f"rdv_chunk#{req.req_id}.{chunk.index}",
                lambda c, r=req, rid=recv_req_id, ch=chunk, n=nchunks, m=mode, rw=raw, mt=meta: (
                    self._op_send_rdv_chunk(c, r, rid, ch, n, m, rw, mt)
                ),
            )
        self._trace("nmad.data_send", req)

    def _op_send_rdv_chunk(
        self,
        ctx,
        req: NmRequest,
        recv_req_id: int,
        chunk: RdvChunk,
        nchunks: int,
        mode: str,
        raw: Any,
        meta: Optional[dict],
    ) -> None:
        """Register and submit one DATA chunk of a rendezvous data phase.

        Registration is per-chunk (``register_range``) so the pinning cost
        of the next chunk overlaps the wire drain of the previous one. Each
        chunk is its own tracked packet in the reliability layer, so a lost
        chunk retransmits alone.
        """
        gate = self.gate_to(req.peer)
        rail_index = chunk.rail_index
        if self.reliability is not None:
            rail_index = self.reliability.select_rail(gate, rail_index)
        out_driver = gate.rails[rail_index]
        if out_driver.supports_zero_copy:
            if nchunks == 1:
                ctx.charge(self.registry.register(req.buffer_id, req.size))
            else:
                ctx.charge(
                    self.registry.register_range(req.buffer_id, chunk.offset, chunk.length)
                )
        headers: dict[str, Any] = {
            "tx_reqs": [req.req_id],
            "recv_req_id": recv_req_id,
        }
        if nchunks == 1:
            headers["payload"] = req.payload
        else:
            headers.update(
                payload=slice_raw(mode, raw, chunk.offset, chunk.length, chunk.index),
                payload_mode=mode,
                payload_meta=meta if chunk.index == 0 else None,
                chunk_index=chunk.index,
                offset=chunk.offset,
                length=chunk.length,
                size=req.size,
                nchunks=nchunks,
            )
        data = Packet(
            kind=PacketKind.DATA,
            src_node=self.node_index,
            dst_node=req.peer,
            payload_size=chunk.length,
            headers=headers,
        )
        if self.reliability is not None:
            track_mode = "zero_copy" if out_driver.supports_zero_copy else "eager"
            self.reliability.track(gate, data, track_mode, rail_index)
        if out_driver.supports_zero_copy:
            out_driver.submit_zero_copy(ctx, data)
        else:
            self.stats["copies_bytes"] += chunk.length
            out_driver.submit_eager(
                ctx, data, chunk.length, self._numa_factor(ctx, req.producer_core)
            )
        if self.reliability is not None:
            self.reliability.arm(ctx, data)
        if nchunks > 1:
            self.stats["rdv_chunks_sent"] += 1

    def _on_rx_data(self, ctx, driver: Driver, packet: Packet) -> None:
        recv_id = packet.headers["recv_req_id"]
        nchunks = packet.headers.get("nchunks", 1)
        if nchunks <= 1:
            req = self._rdv_recvs.pop(recv_id, None)
            if req is None:
                if self.reliability is not None:
                    return  # duplicate DATA already satisfied this recv
                raise ProtocolError(f"DATA for unknown rendezvous recv #{recv_id}")
            ctx.charge(driver.rx_consume_us())
            req.data = packet.headers.get("payload")
            ctx.schedule_after(0.0, self._complete_req, req)
            self._trace("nmad.data_recv", req)
            return
        # chunked data phase: accumulate until every chunk has landed
        req = self._rdv_recvs.get(recv_id)
        if req is None:
            if self.reliability is not None:
                return  # duplicate chunk of an already-completed recv
            raise ProtocolError(f"DATA chunk for unknown rendezvous recv #{recv_id}")
        ctx.charge(driver.rx_consume_us())
        assembler = self._rdv_assembly.get(recv_id)
        if assembler is None:
            assembler = self._rdv_assembly[recv_id] = PayloadAssembler(
                packet.headers["size"], nchunks
            )
        self.stats["rdv_chunks_received"] += 1
        if not assembler.add(packet.headers):
            return
        self._rdv_recvs.pop(recv_id, None)
        self._rdv_assembly.pop(recv_id, None)
        req.data = assembler.payload()
        ctx.schedule_after(0.0, self._complete_req, req)
        self._trace("nmad.data_recv", req)

    # -------------------------------------------------------------- completion

    def _complete_req(self, req: NmRequest) -> None:
        if req.done:  # split chunks may race with direct completion paths
            return
        if req.kind == "send":
            self._sends.pop(req.req_id, None)
        req.complete(self.sim.now)
        for cb in self.on_request_complete:
            cb(req)
        self._trace("nmad.complete", req)
        # completing a request is activity too: waiters polling on the
        # session flag must re-check
        self.activity_flag.set()

    # ------------------------------------------------------------------- misc

    def _trace(self, category: str, req: NmRequest) -> None:
        # sessions built without a tracer rebind this to `_trace_noop`
        self.tracer.record(
            self.sim.now, category, f"n{self.node_index}", f"req#{req.req_id}",
            kind=req.kind, peer=req.peer, tag=req.tag, size=req.size, state=req.state,
        )

    def _trace_raw(self, category: str, where: str, label: str) -> None:
        self.tracer.record(self.sim.now, category, where, label)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NmSession n{self.node_index} gates={sorted(self.gates)} ops={len(self.ops)}>"
