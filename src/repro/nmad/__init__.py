"""NewMadeleine: the communication library of the PM2 suite.

Three-layer architecture (Fig. 3 of the paper):

1. **Interface layer** (:mod:`repro.nmad.interface`) — ``isend`` /
   ``irecv`` / ``swait`` / ``rwait``; the application enqueues packets and
   immediately returns to computing.
2. **Optimizer/scheduler layer** (:mod:`repro.nmad.strategies`) — decides
   how pending packets become wire packets: FIFO, aggregation, multirail
   split.
3. **Transfer layer** (:mod:`repro.nmad.drivers`) — per-technology drivers
   (MX-like NIC, TCP-like NIC, intra-node shared memory) translating packet
   submissions into hardware operations with CPU/wire costs.

Protocols: PIO (very small), eager copy+DMA (≤ rendezvous threshold), and
the zero-copy rendezvous (RTS/CTS/DATA) for large messages (§2.2, §2.3).

Progression is pluggable: :class:`repro.nmad.progress.SequentialEngine`
reproduces the original non-multithreaded NewMadeleine (progress only on
the application thread), while :class:`repro.pioman.engine.PiomanEngine`
is the paper's contribution.
"""

from .core import Gate, NmSession
from .interface import NmInterface
from .progress import EngineBase, SequentialEngine
from .request import NmRequest, ReqState

__all__ = [
    "NmSession",
    "Gate",
    "NmRequest",
    "ReqState",
    "NmInterface",
    "EngineBase",
    "SequentialEngine",
]
