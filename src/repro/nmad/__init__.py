"""NewMadeleine: the communication library of the PM2 suite.

Three-layer architecture (Fig. 3 of the paper):

1. **Interface layer** (:mod:`repro.nmad.interface`) — ``isend`` /
   ``irecv`` / ``swait`` / ``rwait``; the application enqueues packets and
   immediately returns to computing.
2. **Optimizer/scheduler layer** (:mod:`repro.nmad.strategies`) — decides
   how pending packets become wire packets: FIFO, aggregation, multirail
   split.
3. **Transfer layer** (:mod:`repro.nmad.drivers`) — per-technology drivers
   (MX-like NIC, TCP-like NIC, intra-node shared memory) translating packet
   submissions into hardware operations with CPU/wire costs.

Protocols: PIO (very small), eager copy+DMA (≤ rendezvous threshold), and
the zero-copy rendezvous (RTS/CTS/DATA) for large messages (§2.2, §2.3).
Each protocol lives in its own engine module — :mod:`repro.nmad.eager`
and :mod:`repro.nmad.rdv` — registered against the
:class:`~repro.nmad.core.SessionCore` dispatch tables, exchanging the
typed wire frames of :mod:`repro.nmad.wire` and completing through the
unified :class:`~repro.nmad.progress.CompletionQueue`.

Progression is pluggable: :class:`repro.nmad.progress.SequentialEngine`
reproduces the original non-multithreaded NewMadeleine (progress only on
the application thread), while :class:`repro.pioman.engine.PiomanEngine`
is the paper's contribution.
"""

from .core import Gate, NmSession, SessionCore
from .eager import EagerEngine
from .interface import NmInterface, payload_nbytes
from .progress import (
    CompletionQueue,
    EngineBase,
    RecoveryCompletion,
    RequestCompletion,
    SequentialEngine,
    WireCompletion,
)
from .rdv import RdvEngine
from .request import NmRequest, ReqState
from .wire import AckFrame, CtsFrame, DataChunkFrame, EagerFrame, RtsFrame

__all__ = [
    "NmSession",
    "SessionCore",
    "Gate",
    "NmRequest",
    "ReqState",
    "NmInterface",
    "payload_nbytes",
    "EngineBase",
    "SequentialEngine",
    "CompletionQueue",
    "WireCompletion",
    "RequestCompletion",
    "RecoveryCompletion",
    "EagerEngine",
    "RdvEngine",
    "EagerFrame",
    "RtsFrame",
    "CtsFrame",
    "DataChunkFrame",
    "AckFrame",
]
