"""repro — reproduction of *"A multithreaded communication engine for
multicore architectures"* (Trahay, Brunet, Denis, Namyst — CAC/IPDPS 2008).

The package implements the PM2 software suite of the paper on top of a
deterministic discrete-event simulation of a multicore cluster:

* :mod:`repro.sim` — discrete-event kernel (virtual µs clock);
* :mod:`repro.topology` — machine model (the paper's dual quad-core Xeon
  testbed and generic shapes);
* :mod:`repro.marcel` — two-level thread scheduler with tasklets and
  scheduling triggers;
* :mod:`repro.network` — NIC/wire models (MX-like, TCP-like, shared memory);
* :mod:`repro.nmad` — the NewMadeleine communication library (eager +
  rendezvous protocols, optimizer strategies);
* :mod:`repro.pioman` — **the paper's contribution**: the event-driven
  multithreaded communication engine;
* :mod:`repro.mpi` — an mpi4py-flavoured layer on top;
* :mod:`repro.apps` / :mod:`repro.harness` — the paper's benchmarks and the
  experiment harness regenerating every figure and table.
"""

from ._version import __version__
from .config import (
    EngineKind,
    HostModel,
    MarcelConfig,
    NicModel,
    PiomanConfig,
    ShmModel,
    TimingModel,
)
from .errors import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "EngineKind",
    "TimingModel",
    "HostModel",
    "NicModel",
    "ShmModel",
    "MarcelConfig",
    "PiomanConfig",
    # lazy (see __getattr__): heavyweight entry points
    "ClusterRuntime",
    "MpiWorld",
]

_LAZY = {
    "ClusterRuntime": ("repro.harness.runner", "ClusterRuntime"),
    "MpiWorld": ("repro.mpi", "MpiWorld"),
}


def __getattr__(name: str):
    """Lazy top-level conveniences: ``from repro import ClusterRuntime``.

    Loaded on demand so that ``import repro`` stays light and cycle-free.
    """
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
