"""Pluggable interconnect models: topology, routing, per-link contention.

The fabric used to hard-wire delivery timing — a contention-free
point-to-point wire, which is fine for the paper's 2-node Myri-10G testbed
where the switch is never the bottleneck. This module extracts that timing
decision into an **interconnect model**: a :class:`Topology` maps a
``(src, dst)`` node pair to an ordered path of directed :class:`Link`\\ s,
and the generic traversal engine charges per-hop latency and
store-and-forward drain along that path. With ``contention=True`` every
link additionally owns a *busy-until cursor*: a frame's drain on a link
cannot start before the previous frame finished draining, so frames queue
at the bottleneck hop — the generalization of the old per-destination
``ingress_contention`` egress-port special case.

Three topologies ship:

* :class:`Direct` — the seed model: one logical egress port per
  destination node, latency/bandwidth taken from the injecting NIC. With
  contention off it reproduces the pre-refactor ``Fabric.transmit``
  arithmetic **byte-for-byte** (the trace-compat golden guard pins this);
  with contention on it is exactly the old ``ingress_contention`` rule.
* :class:`FatTree` — a ``k``-ary fat-tree (k pods of k/2 edge + k/2 agg
  switches, (k/2)² cores, k³/4 hosts) with deterministic D-mod-k style
  routing.
* :class:`Dragonfly` — the canonical ``(a, p, h)`` dragonfly (groups of
  ``a`` routers × ``p`` hosts × ``h`` global links each, ``a·h + 1``
  fully-connected groups) with minimal routing.

Naming note: this module is ``repro.network.interconnect`` — *not*
"topology" — because :mod:`repro.topology` already names the intra-node
NUMA machine model (sockets, cores, memory domains). "Interconnect" is
the inter-node wire structure; the two are orthogonal layers.

The PDES lookahead of :mod:`repro.network.lookahead` is derived from
:meth:`Topology.min_path_latency_us` — the cheapest end-to-end latency any
cross-node frame can possibly pay — instead of the NIC wire latency alone
(for :class:`Direct` the two coincide, keeping partitioned-run digests
byte-identical).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import ConfigError, RouteError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import InterconnectConfig
    from .fabric import Fabric
    from .message import Packet
    from .nic import Nic

__all__ = [
    "Link",
    "Topology",
    "Direct",
    "FatTree",
    "Dragonfly",
    "make_topology",
    "topology_from_config",
    "TOPOLOGY_KINDS",
]

TOPOLOGY_KINDS = ("direct", "fattree", "dragonfly")


class Link:
    """One directed link of an interconnect model.

    ``latency_us``/``bw`` of ``None`` mean "inherit from the injecting
    NIC's model" — used by injection links so every frame still pays at
    least the NIC wire latency, and by :class:`Direct` to reproduce the
    seed timing with heterogeneous NIC models on one fabric.

    ``free_at`` is the contention cursor: the virtual time until which the
    link is still draining an earlier frame. The traversal engine only
    consults and advances it when the owning topology runs with
    ``contention=True``.
    """

    __slots__ = (
        "name",
        "u",
        "v",
        "latency_us",
        "bw",
        "free_at",
        "frames",
        "bytes",
        "queued_us",
        "busy_us",
    )

    def __init__(
        self,
        name: str,
        u: str,
        v: str,
        latency_us: Optional[float] = None,
        bw: Optional[float] = None,
    ) -> None:
        self.name = name
        self.u = u
        self.v = v
        self.latency_us = latency_us
        self.bw = bw
        self.free_at = 0.0
        self.frames = 0
        self.bytes = 0
        self.queued_us = 0.0
        self.busy_us = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name} frames={self.frames} queued={self.queued_us:.1f}µs>"


class Topology:
    """Base interconnect model: routing plus the generic traversal engine.

    Subclasses implement :meth:`_build_path` (and optionally override
    :meth:`delivery_delay` — :class:`Direct` does, to keep the seed
    floating-point arithmetic bit-exact). One topology instance belongs to
    exactly one fabric: link cursors are per-fabric state, so multirail
    runs build one instance per rail.
    """

    kind: str = "abstract"

    def __init__(self, contention: bool = False) -> None:
        self.contention = bool(contention)
        self._links: dict[str, Link] = {}
        self._paths: dict[tuple[int, int], tuple[Link, ...]] = {}

    # -- structure ---------------------------------------------------------------

    def capacity(self) -> Optional[int]:
        """Maximum number of attachable hosts (None = unbounded)."""
        return None

    def validate_node(self, node_index: int) -> None:
        """Reject attachment of a node the topology cannot place."""
        cap = self.capacity()
        if node_index < 0:
            raise RouteError(f"negative node index {node_index}")
        if cap is not None and node_index >= cap:
            raise RouteError(
                f"node n{node_index} exceeds {self.kind} capacity of {cap} hosts"
            )

    def _link(
        self,
        u: str,
        v: str,
        latency_us: Optional[float],
        bw: Optional[float],
    ) -> Link:
        """Get-or-create the directed link ``u -> v``."""
        name = f"{u}>{v}"
        link = self._links.get(name)
        if link is None:
            link = Link(name, u, v, latency_us, bw)
            self._links[name] = link
        return link

    def path(self, src: int, dst: int) -> tuple[Link, ...]:
        """Ordered links a frame traverses from host ``src`` to ``dst``."""
        if src == dst:
            raise RouteError(f"{self.kind} loopback h{src}; use the shm channel")
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is None:
            cached = self._build_path(src, dst)
            self._paths[key] = cached
        return cached

    def _build_path(self, src: int, dst: int) -> tuple[Link, ...]:
        raise NotImplementedError

    def links(self) -> list[Link]:
        """Every link created so far, sorted by name (stable for reports)."""
        return [self._links[name] for name in sorted(self._links)]

    # -- timing ------------------------------------------------------------------

    def delivery_delay(
        self,
        fabric: "Fabric",
        src_nic: "Nic",
        packet: "Packet",
        tx_time: float,
        extra_delay_us: float,
        trail: int = 0,
    ) -> float:
        """Delay (relative to ``fabric.sim.now``) until ``packet`` arrives.

        ``tx_time`` is when the first byte leaves the source NIC (relative
        to now); ``extra_delay_us`` is fault-injected latency. ``trail``
        marks fault-injected duplicates: duplicate ``i`` enters the wire
        ``i`` injection-drain times behind the original, and traverses the
        same serialization path (consulting and advancing every cursor),
        so a duplicate can never overlap another frame on a contended
        link.

        Store-and-forward per hop: the head of the frame pays the link
        latency, then the drain may start only once the link is free (when
        contention is on); the link is busy until the drain completes.
        """
        model = src_nic.model
        size = packet.wire_size()
        sim = fabric.sim
        inj_drain = size / model.wire_bw
        t = sim.now + tx_time + extra_delay_us + trail * inj_drain
        contention = self.contention
        for link in self.path(packet.src_node, packet.dst_node):
            lat = model.wire_latency_us if link.latency_us is None else link.latency_us
            bw = model.wire_bw if link.bw is None else link.bw
            drain = size / bw
            ready = t + lat
            if contention and link.free_at > ready:
                link.queued_us += link.free_at - ready
                start = link.free_at
            else:
                start = ready
            done = start + drain
            if contention:
                link.free_at = done
            link.frames += 1
            link.bytes += size
            link.busy_us += drain
            t = done
        return t - sim.now

    # -- lookahead ---------------------------------------------------------------

    def min_path_latency_us(self, nic_latency_us: float, nodes: Iterable[int]) -> float:
        """Cheapest end-to-end latency (drain excluded) over ``nodes`` pairs.

        ``nic_latency_us`` substitutes for inherit-from-NIC links (callers
        pass the *minimum* attached NIC latency: the fastest wire governs
        conservative-PDES safety). Falls back to ``nic_latency_us`` when
        fewer than two nodes are attached — a single-node fabric still has
        a well-defined injection floor.
        """
        node_list = list(nodes)
        best = math.inf
        for src in node_list:
            for dst in node_list:
                if src == dst:
                    continue
                total = 0.0
                for link in self.path(src, dst):
                    total += (
                        nic_latency_us if link.latency_us is None else link.latency_us
                    )
                best = min(best, total)
        return nic_latency_us if best is math.inf else best

    # -- observability -----------------------------------------------------------

    def queued_us(self) -> float:
        """Total time frames spent queued behind busy links."""
        return sum(link.queued_us for link in self._links.values())

    def link_stats(self, now: float) -> dict[str, float]:
        """Flat per-link lane for the metrics registry (``link.<name>.*``).

        ``util`` is cumulative drain time over elapsed virtual time — the
        classic offered-load utilization of the link.
        """
        out: dict[str, float] = {}
        for link in self.links():
            prefix = f"link.{link.name}"
            out[f"{prefix}.frames"] = float(link.frames)
            out[f"{prefix}.bytes"] = float(link.bytes)
            out[f"{prefix}.queued_us"] = link.queued_us
            out[f"{prefix}.busy_us"] = link.busy_us
            out[f"{prefix}.util"] = link.busy_us / now if now > 0 else 0.0
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} contention={self.contention} links={len(self._links)}>"


class Direct(Topology):
    """The seed fabric model: one egress port per destination node.

    Timing is exactly the pre-refactor ``Fabric.transmit``:

    * contention off (default) — arrival at
      ``tx_time + nic.wire_latency_us + size/nic.wire_bw`` (+ fault
      delay), computed with the identical floating-point operation order
      so existing traces stay byte-for-byte identical;
    * contention on — the old ``ingress_contention`` rule: arrivals
      serialize per destination node at wire rate (the egress-port model),
      with duplicates now routed through the same cursor (the overlap
      bugfix this refactor ships).
    """

    kind = "direct"

    def _egress(self, dst: int) -> Link:
        return self._link("fabric", f"h{dst}", None, None)

    def _build_path(self, src: int, dst: int) -> tuple[Link, ...]:
        return (self._egress(dst),)

    def delivery_delay(
        self,
        fabric: "Fabric",
        src_nic: "Nic",
        packet: "Packet",
        tx_time: float,
        extra_delay_us: float,
        trail: int = 0,
    ) -> float:
        model = src_nic.model
        size = packet.wire_size()
        drain = size / model.wire_bw
        delay = tx_time + model.wire_latency_us + drain
        delay += extra_delay_us
        if trail:
            delay += trail * drain
        link = self._egress(packet.dst_node)
        if self.contention:
            sim = fabric.sim
            arrival = sim.now + delay
            if link.free_at > arrival - drain:
                # the egress port is still transmitting an earlier frame:
                # this one queues behind it
                queued = link.free_at - (arrival - drain)
                link.queued_us += queued
                arrival += queued
            link.free_at = arrival
            delay = arrival - sim.now
        link.frames += 1
        link.bytes += size
        link.busy_us += drain
        return delay

    def min_path_latency_us(self, nic_latency_us: float, nodes: Iterable[int]) -> float:
        # single hop on the injecting NIC's wire: the floor is the NIC
        # latency itself, exactly the pre-refactor lookahead
        return nic_latency_us


class FatTree(Topology):
    """``k``-ary fat-tree (Al-Fares et al.): k³/4 hosts.

    Structure: ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation
    switches; ``(k/2)²`` core switches; every edge switch serves ``k/2``
    hosts. Host indices are assigned pod-major.

    Routing is deterministic (required for reproducible traces): the
    up-path aggregation switch is ``dst % (k/2)`` and the core switch is
    ``agg·(k/2) + (src + dst) % (k/2)`` — a D-mod-k flavour that spreads
    flows while keeping the route a pure function of the pair.

    Injection links (host→edge) inherit the NIC latency/bandwidth; every
    switch hop pays ``hop_latency_us`` and drains at ``link_bw`` (None =
    NIC wire bandwidth).
    """

    kind = "fattree"

    def __init__(
        self,
        k: int = 4,
        *,
        hop_latency_us: float = 0.3,
        link_bw: Optional[float] = None,
        contention: bool = False,
    ) -> None:
        super().__init__(contention=contention)
        if k < 2 or k % 2:
            raise ConfigError(f"fat-tree arity k must be even and >= 2, got {k}")
        if hop_latency_us < 0:
            raise ConfigError(f"hop_latency_us must be >= 0, got {hop_latency_us}")
        if link_bw is not None and link_bw <= 0:
            raise ConfigError(f"link_bw must be > 0, got {link_bw}")
        self.k = k
        self.hop_latency_us = hop_latency_us
        self.link_bw = link_bw

    def capacity(self) -> int:
        return (self.k**3) // 4

    def _hop(self, u: str, v: str) -> Link:
        return self._link(u, v, self.hop_latency_us, self.link_bw)

    def _build_path(self, src: int, dst: int) -> tuple[Link, ...]:
        if src == dst:
            raise RouteError(f"fat-tree loopback h{src}")
        for h in (src, dst):
            self.validate_node(h)
        half = self.k // 2
        hosts_per_pod = half * half
        pod_s, pod_d = src // hosts_per_pod, dst // hosts_per_pod
        e_s = (src % hosts_per_pod) // half
        e_d = (dst % hosts_per_pod) // half
        edge_s = f"p{pod_s}e{e_s}"
        edge_d = f"p{pod_d}e{e_d}"
        hops = [self._link(f"h{src}", edge_s, None, None)]  # injection
        if (pod_s, e_s) != (pod_d, e_d):
            a = dst % half
            if pod_s == pod_d:
                agg = f"p{pod_s}a{a}"
                hops.append(self._hop(edge_s, agg))
                hops.append(self._hop(agg, edge_d))
            else:
                core = a * half + (src + dst) % half
                hops.append(self._hop(edge_s, f"p{pod_s}a{a}"))
                hops.append(self._hop(f"p{pod_s}a{a}", f"c{core}"))
                hops.append(self._hop(f"c{core}", f"p{pod_d}a{a}"))
                hops.append(self._hop(f"p{pod_d}a{a}", edge_d))
        hops.append(self._hop(edge_d, f"h{dst}"))
        return tuple(hops)


class Dragonfly(Topology):
    """Canonical dragonfly ``(a, p, h)``: ``(a·h + 1)·a·p`` hosts.

    ``a`` routers per group, ``p`` hosts per router, ``h`` global links
    per router; ``a·h + 1`` groups give all-to-all group connectivity over
    exactly one global link per group pair. Minimal routing: local hop to
    the router owning the global link, the global hop, local hop to the
    destination router.

    Injection links inherit the NIC latency/bandwidth; intra-group hops
    pay ``local_latency_us``; the global hop pays ``global_latency_us``
    (optical long links are the expensive ones in the modern-interconnect
    cost structures this model calibrates against).
    """

    kind = "dragonfly"

    def __init__(
        self,
        a: int = 4,
        p: int = 2,
        h: int = 2,
        *,
        local_latency_us: float = 0.3,
        global_latency_us: float = 1.2,
        link_bw: Optional[float] = None,
        contention: bool = False,
    ) -> None:
        super().__init__(contention=contention)
        if a < 1 or p < 1 or h < 1:
            raise ConfigError(f"dragonfly a/p/h must all be >= 1, got ({a}, {p}, {h})")
        if local_latency_us < 0 or global_latency_us < 0:
            raise ConfigError("dragonfly hop latencies must be >= 0")
        if link_bw is not None and link_bw <= 0:
            raise ConfigError(f"link_bw must be > 0, got {link_bw}")
        self.a = a
        self.p = p
        self.h = h
        self.local_latency_us = local_latency_us
        self.global_latency_us = global_latency_us
        self.link_bw = link_bw

    @property
    def groups(self) -> int:
        return self.a * self.h + 1

    def capacity(self) -> int:
        return self.groups * self.a * self.p

    def _local(self, u: str, v: str) -> Link:
        return self._link(u, v, self.local_latency_us, self.link_bw)

    def _global_router(self, here: int, there: int) -> int:
        """Router index (within group ``here``) owning the link to ``there``."""
        idx = there if there < here else there - 1
        return idx // self.h

    def _build_path(self, src: int, dst: int) -> tuple[Link, ...]:
        if src == dst:
            raise RouteError(f"dragonfly loopback h{src}")
        for node in (src, dst):
            self.validate_node(node)
        per_group = self.a * self.p
        g_s, g_d = src // per_group, dst // per_group
        r_s = (src % per_group) // self.p
        r_d = (dst % per_group) // self.p
        rtr_s = f"g{g_s}r{r_s}"
        rtr_d = f"g{g_d}r{r_d}"
        hops = [self._link(f"h{src}", rtr_s, None, None)]  # injection
        if g_s == g_d:
            if r_s != r_d:
                hops.append(self._local(rtr_s, rtr_d))
        else:
            r_out = self._global_router(g_s, g_d)
            r_in = self._global_router(g_d, g_s)
            out_name = f"g{g_s}r{r_out}"
            in_name = f"g{g_d}r{r_in}"
            if r_s != r_out:
                hops.append(self._local(rtr_s, out_name))
            hops.append(
                self._link(out_name, in_name, self.global_latency_us, self.link_bw)
            )
            if r_in != r_d:
                hops.append(self._local(in_name, rtr_d))
        hops.append(self._local(rtr_d, f"h{dst}"))
        return tuple(hops)


def make_topology(
    spec: "str | Topology | None",
    *,
    contention: bool = False,
    fattree_k: int = 4,
    dragonfly_a: int = 4,
    dragonfly_p: int = 2,
    dragonfly_h: int = 2,
    hop_latency_us: float = 0.3,
    global_latency_us: float = 1.2,
    link_bw: Optional[float] = None,
) -> Topology:
    """Build a fresh :class:`Topology` from a spec.

    ``spec`` may be an existing instance (returned as-is — remember one
    instance carries per-fabric cursor state), ``None``/``"direct"``,
    ``"fattree"``, or ``"dragonfly"``. Arity parameters may ride inline:
    ``"fattree:8"`` and ``"dragonfly:4,2,2"`` override the keyword
    defaults.
    """
    if isinstance(spec, Topology):
        if contention:
            spec.contention = True
        return spec
    name, _, args = (spec or "direct").partition(":")
    name = name.strip().lower()
    if name == "direct":
        if args:
            raise ConfigError(f"direct topology takes no parameters, got {args!r}")
        return Direct(contention=contention)
    if name == "fattree":
        k = fattree_k
        if args:
            try:
                k = int(args)
            except ValueError:
                raise ConfigError(f"bad fat-tree arity {args!r} (want 'fattree:<k>')") from None
        return FatTree(
            k,
            hop_latency_us=hop_latency_us,
            link_bw=link_bw,
            contention=contention,
        )
    if name == "dragonfly":
        a, p, h = dragonfly_a, dragonfly_p, dragonfly_h
        if args:
            try:
                a, p, h = (int(part) for part in args.split(","))
            except ValueError:
                raise ConfigError(
                    f"bad dragonfly shape {args!r} (want 'dragonfly:<a>,<p>,<h>')"
                ) from None
        return Dragonfly(
            a,
            p,
            h,
            local_latency_us=hop_latency_us,
            global_latency_us=global_latency_us,
            link_bw=link_bw,
            contention=contention,
        )
    raise ConfigError(
        f"unknown interconnect topology {spec!r}; expected one of {TOPOLOGY_KINDS}"
    )


def topology_from_config(
    config: "InterconnectConfig", *, force_contention: bool = False
) -> Topology:
    """Fresh :class:`Topology` from a :class:`repro.config.InterconnectConfig`.

    Call once per fabric (rail): cursor state must not be shared. The
    harness's legacy ``ingress_contention=True`` flag arrives here as
    ``force_contention``.
    """
    return make_topology(
        config.topology,
        contention=config.contention or force_contention,
        fattree_k=config.fattree_k,
        dragonfly_a=config.dragonfly_a,
        dragonfly_p=config.dragonfly_p,
        dragonfly_h=config.dragonfly_h,
        hop_latency_us=config.hop_latency_us,
        global_latency_us=config.global_latency_us,
        link_bw=config.link_bw or None,
    )
