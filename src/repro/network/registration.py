"""Memory registration (pinning) cost model with a registration cache.

The rendezvous protocol DMAs directly from/into application buffers, which
must be *registered* (pinned) first. Registration is expensive
(``reg_setup_us + size * reg_byte_us``); real communication libraries keep
a registration cache so repeatedly-used buffers are pinned once. The cache
is an LRU over buffer identifiers with a bounded pinned-byte budget.
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import NicModel
from ..errors import NetworkError

__all__ = ["MemoryRegistry"]


class MemoryRegistry:
    """Registration cache for one node."""

    def __init__(self, model: NicModel, capacity_bytes: int = 1 << 30, enable_cache: bool = True) -> None:
        if capacity_bytes <= 0:
            raise NetworkError(f"cache capacity must be > 0, got {capacity_bytes}")
        self.model = model
        self.capacity_bytes = capacity_bytes
        self.enable_cache = enable_cache
        self._cache: "OrderedDict[object, int]" = OrderedDict()
        self._pinned = 0
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def register(self, buffer_id: object, size: int) -> float:
        """Return the CPU cost (µs) to make ``buffer_id`` DMA-able now."""
        if size < 0:
            raise NetworkError(f"negative registration size: {size}")
        if self.enable_cache and buffer_id in self._cache:
            if self._cache[buffer_id] >= size:
                self._cache.move_to_end(buffer_id)
                self.hits += 1
                return 0.0
            # registered smaller region: deregister and re-pin
            self._pinned -= self._cache.pop(buffer_id)
        self.misses += 1
        cost = self.model.registration_us(size)
        if not self.enable_cache:
            return cost
        while self._pinned + size > self.capacity_bytes and self._cache:
            _victim, vsize = self._cache.popitem(last=False)
            self._pinned -= vsize
            self.evictions += 1
        if size <= self.capacity_bytes:
            self._cache[buffer_id] = size
            self._pinned += size
        return cost

    def register_range(self, buffer_id: object, offset: int, length: int) -> float:
        """Cost (µs) to register one ``length``-byte window of a buffer.

        The pipelined rendezvous data phase registers the payload chunk by
        chunk so registration of chunk *k+1* overlaps the DMA drain of
        chunk *k*. Each window is its own cache entry — keyed by
        ``(buffer_id, offset, length)`` — so re-sending from the same
        buffer with the same chunking hits the cache per-window, while a
        whole-buffer registration under the plain ``buffer_id`` key is
        never mistaken for a window (and vice versa).
        """
        if offset < 0:
            raise NetworkError(f"negative registration offset: {offset}")
        return self.register((buffer_id, offset, length), length)

    def deregister(self, buffer_id: object) -> None:
        size = self._cache.pop(buffer_id, None)
        if size is not None:
            self._pinned -= size

    @property
    def pinned_bytes(self) -> int:
        return self._pinned

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
