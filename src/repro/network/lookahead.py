"""Lookahead extraction for the partitioned (conservative parallel) kernel.

Conservative parallel-DES (see :mod:`repro.sim.partition`) can only fire an
event once it knows no remote partition will send anything earlier. The
guarantee horizon is built from **lookahead**: a lower bound on the delay
between a send decision on one partition and its earliest possible effect
on another. In this model that bound is physical — every cross-node packet
pays at least the one-way wire latency (`Fabric.transmit` adds
``model.wire_latency_us`` before any bandwidth or drain term), so the wire
latency of the slowest-free path *is* the lookahead.

This module centralizes the extraction so the partition layer never
hard-codes knowledge of timing-model internals:

* :func:`nic_lookahead_us` — one NIC model's floor (its wire latency).
* :func:`timing_lookahead_us` — a whole :class:`~repro.config.TimingModel`.
* :func:`fabric_lookahead_us` — a live :class:`~repro.network.fabric.Fabric`:
  the fabric's interconnect model prices the **minimum path latency** over
  every attached node pair (:meth:`Topology.min_path_latency_us`), with
  inherit-from-NIC links valued at the *minimum* attached NIC latency
  (heterogeneous rails take the min: the earliest possible arrival governs
  safety). For the default :class:`~repro.network.interconnect.Direct`
  model this is exactly the old NIC-wire-latency floor, so partitioned-run
  digests are unchanged; fat-tree/dragonfly models add their switch-hop
  latencies, *raising* the lookahead (larger safe horizons, fewer null
  messages).
* :func:`require_lookahead` — validation: conservative synchronization
  deadlocks at zero lookahead, so a non-positive value is a configuration
  error, not a warning.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..config import NicModel, TimingModel
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fabric import Fabric

__all__ = [
    "nic_lookahead_us",
    "timing_lookahead_us",
    "fabric_lookahead_us",
    "require_lookahead",
]


def require_lookahead(value: float, context: str = "lookahead") -> float:
    """Validate a lookahead value: finite and strictly positive.

    Null-message synchronization advances the safe horizon by at least one
    lookahead per exchange; at zero the horizon never moves and the
    partitions livelock. Raise :class:`~repro.errors.ConfigError` up front
    instead of hanging later.
    """
    v = float(value)
    if not math.isfinite(v) or v <= 0.0:
        raise ConfigError(
            f"{context} must be a finite value > 0 for conservative "
            f"synchronization (got {value!r}); zero-latency links cannot "
            "be split across partitions"
        )
    return v


def nic_lookahead_us(model: NicModel, context: str = "NicModel") -> float:
    """The lookahead floor of one NIC model: its one-way wire latency."""
    return require_lookahead(model.wire_latency_us, f"{context}.wire_latency_us")


def timing_lookahead_us(timing: TimingModel) -> float:
    """Cross-node lookahead implied by a :class:`~repro.config.TimingModel`.

    Every inter-node packet in the model traverses a NIC and pays
    ``timing.nic.wire_latency_us`` before arrival, so that latency bounds
    how far one partition's present can reach into another's future.
    """
    return nic_lookahead_us(timing.nic, "TimingModel.nic")


def fabric_lookahead_us(fabric: "Fabric") -> float:
    """Minimum end-to-end path latency of ``fabric``'s interconnect model.

    With heterogeneous NICs the *fastest* wire governs safety — a message
    can always take the quickest path, so the guarantee must assume it.
    The fabric's topology then adds the switch hops of the cheapest route:
    for the default direct model this degenerates to the minimum NIC wire
    latency (the pre-topology behaviour, bit-exact); fat-tree/dragonfly
    models legitimately raise the bound.
    """
    models = [nic.model for nic in fabric._nics.values()]
    if not models:
        raise ConfigError(
            f"fabric {fabric.name!r} has no attached NICs to derive lookahead from"
        )
    min_nic = min(m.wire_latency_us for m in models)
    value = fabric.model.min_path_latency_us(min_nic, sorted(fabric._nics))
    return require_lookahead(value, f"fabric {fabric.name!r} lookahead")
