"""The interconnect fabric connecting NICs.

The fabric *routes* packets; delivery timing belongs to its pluggable
interconnect model (:mod:`repro.network.interconnect`). The default
:class:`~repro.network.interconnect.Direct` model is the paper's
contention-free point-to-point wire: a packet handed over by a NIC at
transmit start ``t`` arrives at the destination NIC at
``t + wire_latency + wire_size/wire_bw`` — a reasonable model for the
2-node Myri-10G testbed where the switch is never the bottleneck. Fat-tree
and dragonfly models route the same packets over a switch hierarchy with
per-link contention instead.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from ..errors import RouteError
from ..sim.events import Priority as EventPriority
from ..sim.kernel import Simulator
from .interconnect import Direct, Topology
from .message import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.inject import FaultInjector
    from .nic import Nic

__all__ = ["Fabric"]


class Fabric:
    """Point-to-point delivery between registered NICs.

    ``topology`` selects the interconnect model (default: contention-free
    :class:`~repro.network.interconnect.Direct`). ``ingress_contention=True``
    is the legacy shorthand that switches the model's per-link contention
    on — under the default model that serializes arrivals *per destination
    NIC* at wire rate, the switch egress-port rule (used by the fairness/
    congestion tests; off by default to keep the paper experiments'
    single-flow timing exact).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "fabric",
        ingress_contention: bool = False,
        topology: Optional[Topology] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        #: the interconnect model owning routing and delivery timing; one
        #: model instance per fabric (it carries per-link cursor state)
        self.model: Topology = topology if topology is not None else Direct()
        if ingress_contention:
            self.model.contention = True
        self._nics: dict[int, "Nic"] = {}
        #: optional fault-injection hook (see :mod:`repro.faults`); consulted
        #: once per transmitted packet when set
        self.injector: Optional["FaultInjector"] = None
        # statistics
        self.packets_carried = 0
        self.bytes_carried = 0
        self.packets_dropped = 0

    @property
    def ingress_contention(self) -> bool:
        """Whether the interconnect model serializes frames per link."""
        return self.model.contention

    @property
    def ingress_queued_us(self) -> float:
        """Total time frames spent queued behind busy links."""
        return self.model.queued_us()

    def metrics(self) -> dict[str, float]:
        """Flat metrics lane: carried totals plus per-link sub-keys.

        Registered by the harness as the ``fabric.<name>`` collector, so
        snapshots carry ``fabric.<name>.link.<link>.{frames,bytes,
        queued_us,busy_us,util}`` alongside the fabric-wide counters.
        """
        out: dict[str, float] = {
            "packets": float(self.packets_carried),
            "bytes": float(self.bytes_carried),
            "dropped": float(self.packets_dropped),
            "queued_us": self.model.queued_us(),
        }
        out.update(self.model.link_stats(self.sim.now))
        return out

    def set_injector(self, injector: Optional["FaultInjector"]) -> None:
        """Install (or clear) the fault-injection hook for this fabric."""
        self.injector = injector

    def attach(self, nic: "Nic") -> None:
        if nic.node_index in self._nics:
            raise RouteError(f"node n{nic.node_index} already has a NIC on {self.name}")
        self.model.validate_node(nic.node_index)
        self._nics[nic.node_index] = nic

    def nic_of(self, node_index: int) -> "Nic":
        try:
            return self._nics[node_index]
        except KeyError:
            raise RouteError(f"no NIC for node n{node_index} on {self.name}") from None

    def transmit(self, src_nic: "Nic", packet: Packet, tx_time: float) -> None:
        """Carry ``packet``; transmission starts ``tx_time`` µs from now.

        The interconnect model prices the journey (per-hop latency,
        store-and-forward drain, link queueing under contention — the
        default direct model collapses to start + latency +
        wire_size/bw, matching how MX exposes message completions).
        """
        dst = self.nic_of(packet.dst_node)
        if dst is src_nic:
            raise RouteError(
                f"fabric loopback n{packet.src_node}->n{packet.dst_node}; "
                "intra-node traffic must use the shared-memory channel"
            )
        duplicates = 0
        extra_delay_us = 0.0
        if self.injector is not None:
            decision = self.injector.decide(packet, self.sim.now + tx_time)
            if not decision.deliver:
                self.packets_dropped += 1
                return
            if decision.corrupt:
                # the receiver gets a *copy* flagged corrupted: the sender's
                # retransmit buffer (which aliases the original packet) must
                # stay intact
                packet = dataclasses.replace(
                    packet, headers={**packet.headers, "corrupted": True}
                )
            extra_delay_us = decision.extra_delay_us
            duplicates = decision.duplicates
        delay = self.model.delivery_delay(self, src_nic, packet, tx_time, extra_delay_us)
        self.packets_carried += 1
        self.bytes_carried += packet.wire_size()
        self.sim.schedule(
            delay, dst.deliver, packet, priority=EventPriority.INTERRUPT, label=f"{self.name}.deliver"
        )
        for i in range(duplicates):
            # a duplicated frame trails the original by one extra drain time
            # and traverses the same serialization path, so under contention
            # it consults and advances the link cursors like any other frame
            dup_delay = self.model.delivery_delay(
                self, src_nic, packet, tx_time, extra_delay_us, trail=i + 1
            )
            self.sim.schedule(
                dup_delay,
                dst.deliver,
                packet,
                priority=EventPriority.INTERRUPT,
                label=f"{self.name}.deliver_dup",
            )
