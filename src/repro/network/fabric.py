"""The interconnect fabric connecting NICs.

The fabric owns delivery timing: a packet handed over by a NIC at transmit
start ``t`` arrives at the destination NIC at
``t + wire_latency + wire_size/wire_bw``. The sending NIC already serializes
its own transmissions (single TX engine), so the fabric itself is
contention-free — a reasonable model for the paper's 2-node Myri-10G
testbed where the switch is never the bottleneck.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from ..errors import RouteError
from ..sim.events import Priority as EventPriority
from ..sim.kernel import Simulator
from .message import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.inject import FaultInjector
    from .nic import Nic

__all__ = ["Fabric"]


class Fabric:
    """Point-to-point delivery between registered NICs.

    ``ingress_contention=True`` additionally serializes arrivals *per
    destination NIC* at wire rate — the switch egress port model. With it,
    several senders flooding one node queue behind each other instead of
    arriving simultaneously (used by the fairness/congestion tests; off by
    default to keep the paper experiments' single-flow timing exact).
    """

    def __init__(self, sim: Simulator, name: str = "fabric", ingress_contention: bool = False) -> None:
        self.sim = sim
        self.name = name
        self.ingress_contention = ingress_contention
        self._nics: dict[int, "Nic"] = {}
        self._ingress_free_at: dict[int, float] = {}
        #: optional fault-injection hook (see :mod:`repro.faults`); consulted
        #: once per transmitted packet when set
        self.injector: Optional["FaultInjector"] = None
        # statistics
        self.packets_carried = 0
        self.bytes_carried = 0
        self.packets_dropped = 0
        self.ingress_queued_us = 0.0

    def set_injector(self, injector: Optional["FaultInjector"]) -> None:
        """Install (or clear) the fault-injection hook for this fabric."""
        self.injector = injector

    def attach(self, nic: "Nic") -> None:
        if nic.node_index in self._nics:
            raise RouteError(f"node n{nic.node_index} already has a NIC on {self.name}")
        self._nics[nic.node_index] = nic

    def nic_of(self, node_index: int) -> "Nic":
        try:
            return self._nics[node_index]
        except KeyError:
            raise RouteError(f"no NIC for node n{node_index} on {self.name}") from None

    def transmit(self, src_nic: "Nic", packet: Packet, tx_time: float) -> None:
        """Carry ``packet``; transmission starts ``tx_time`` µs from now.

        Arrival = start + latency + wire_size/bw (store-and-forward of the
        whole frame, matching how MX exposes message completions).
        """
        dst = self.nic_of(packet.dst_node)
        if dst is src_nic:
            raise RouteError(
                f"fabric loopback n{packet.src_node}->n{packet.dst_node}; "
                "intra-node traffic must use the shared-memory channel"
            )
        model = src_nic.model
        drain = packet.wire_size() / model.wire_bw
        delay = tx_time + model.wire_latency_us + drain
        duplicates = 0
        if self.injector is not None:
            decision = self.injector.decide(packet, self.sim.now + tx_time)
            if not decision.deliver:
                self.packets_dropped += 1
                return
            if decision.corrupt:
                # the receiver gets a *copy* flagged corrupted: the sender's
                # retransmit buffer (which aliases the original packet) must
                # stay intact
                packet = dataclasses.replace(
                    packet, headers={**packet.headers, "corrupted": True}
                )
            delay += decision.extra_delay_us
            duplicates = decision.duplicates
        if self.ingress_contention:
            arrival = self.sim.now + delay
            free_at = self._ingress_free_at.get(packet.dst_node, 0.0)
            if free_at > arrival - drain:
                # the egress port is still transmitting an earlier frame:
                # this one queues behind it
                queued = free_at - (arrival - drain)
                self.ingress_queued_us += queued
                arrival += queued
            self._ingress_free_at[packet.dst_node] = arrival
            delay = arrival - self.sim.now
        self.packets_carried += 1
        self.bytes_carried += packet.wire_size()
        self.sim.schedule(
            delay, dst.deliver, packet, priority=EventPriority.INTERRUPT, label=f"{self.name}.deliver"
        )
        for i in range(duplicates):
            # a duplicated frame trails the original by one extra drain time
            self.sim.schedule(
                delay + (i + 1) * drain,
                dst.deliver,
                packet,
                priority=EventPriority.INTERRUPT,
                label=f"{self.name}.deliver_dup",
            )
