"""Intra-node shared-memory channel.

§4.3: the meta-application "generates both intra-node and inter-node
communication requests which are either submitted to the network
(inter-node requests) or to a shared-memory channel".

The channel mimics a NIC's software interface (submit / completion queue /
poll / activity listeners) so the NewMadeleine driver layer can treat it
uniformly, but its timing is host-memory timing: the *sender's CPU* copies
the payload into the shared segment (cost charged by the caller through the
driver), delivery is one channel latency later, and the *receiver's CPU*
copies it out.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..config import ShmModel
from ..errors import NetworkError
from ..sim.events import Priority as EventPriority
from ..sim.kernel import Simulator
from .message import CompletionRecord, Packet

__all__ = ["ShmChannel"]


class ShmChannel:
    """Loopback channel inside one node."""

    def __init__(self, sim: Simulator, node_index: int, model: ShmModel) -> None:
        self.sim = sim
        self.node_index = node_index
        self.model = model
        self.name = f"n{node_index}.shm"
        self._cq: deque[CompletionRecord] = deque()
        self._activity_listeners: list[Callable[[], None]] = []
        self.tx_packets = 0
        self.polls = 0

    def submit(self, packet: Packet, copy_done_delay: float = 0.0) -> None:
        """Enqueue a packet written into the shared segment.

        ``copy_done_delay`` is the remaining CPU-copy time already charged
        by the caller — the packet becomes visible to the receiver one
        channel latency after the copy completes.
        """
        if packet.src_node != self.node_index or packet.dst_node != self.node_index:
            raise NetworkError(
                f"{self.name}: shm packet must stay on node n{self.node_index} "
                f"(got n{packet.src_node}->n{packet.dst_node})"
            )
        self.tx_packets += 1
        delay = copy_done_delay + self.model.latency_us

        # the sender's copy into the shared segment completes the send
        # locally (the CPU cost was charged by the caller before submit)
        self._cq.append(CompletionRecord("tx_done", packet, self.sim.now))
        self._notify()

        def _arrive() -> None:
            self._cq.append(CompletionRecord("rx", packet, self.sim.now))
            self._notify()

        self.sim.schedule(delay, _arrive, priority=EventPriority.INTERRUPT, label=f"{self.name}.arrive")

    def _notify(self) -> None:
        for cb in self._activity_listeners:
            cb()

    def poll(self, max_events: int = 16) -> list[CompletionRecord]:
        if max_events <= 0:
            raise NetworkError(f"max_events must be > 0, got {max_events}")
        self.polls += 1
        out: list[CompletionRecord] = []
        while self._cq and len(out) < max_events:
            out.append(self._cq.popleft())
        return out

    def has_completions(self) -> bool:
        return bool(self._cq)

    def pending_completions(self) -> int:
        return len(self._cq)

    def add_activity_listener(self, cb: Callable[[], None]) -> None:
        self._activity_listeners.append(cb)

    def remove_activity_listener(self, cb: Callable[[], None]) -> None:
        try:
            self._activity_listeners.remove(cb)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ShmChannel {self.name} cq={len(self._cq)}>"
