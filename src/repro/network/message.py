"""Wire-level packet and completion-queue record types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..errors import NetworkError

__all__ = ["PacketKind", "Packet", "CompletionRecord", "HEADER_BYTES", "CONTROL_BYTES"]

#: bytes of protocol header prepended to every packet on the wire
HEADER_BYTES = 40
#: wire size of a control-only packet (RTS/CTS/ACK)
CONTROL_BYTES = 64


class PacketKind:
    """Packet kinds used by the NewMadeleine protocols."""

    EAGER = "eager"  # eager payload (copied through registered region)
    PIO = "pio"  # tiny payload pushed by CPU PIO
    RTS = "rts"  # rendezvous request-to-send handshake
    CTS = "cts"  # rendezvous clear-to-send answer
    DATA = "data"  # rendezvous zero-copy payload
    ACK = "ack"  # protocol acknowledgement (used by tests/extensions)

    ALL = (EAGER, PIO, RTS, CTS, DATA, ACK)


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One unit on the wire.

    ``payload_size`` is the application bytes carried; ``wire_size()`` adds
    the protocol header. ``headers`` carries protocol metadata (tag, seq,
    request ids) — this is modelling, not serialization, so it is a dict.
    """

    kind: str
    src_node: int
    dst_node: int
    payload_size: int
    headers: dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.kind not in PacketKind.ALL:
            raise NetworkError(f"unknown packet kind {self.kind!r}")
        if self.payload_size < 0:
            raise NetworkError(f"negative payload size: {self.payload_size}")

    def wire_size(self) -> int:
        """Bytes occupying the wire (payload + header, or control frame)."""
        if self.kind in (PacketKind.RTS, PacketKind.CTS, PacketKind.ACK):
            return CONTROL_BYTES
        return self.payload_size + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Packet#{self.packet_id} {self.kind} n{self.src_node}->n{self.dst_node} "
            f"{self.payload_size}B>"
        )


@dataclass(frozen=True)
class CompletionRecord:
    """One completion-queue entry, consumed by polling.

    ``event`` is ``"tx_done"`` (local send completion) or ``"rx"`` (packet
    arrived); ``time`` is when the hardware produced the record (detection
    happens later, when software polls).
    """

    event: str
    packet: Packet
    time: float

    def __post_init__(self) -> None:
        if self.event not in ("tx_done", "rx"):
            raise NetworkError(f"unknown completion event {self.event!r}")
