"""Bounded, refcount-guarded packet freelist for the wire hot path.

Mirrors the ``EventHandle`` pool of :mod:`repro.sim.kernel`: an object is
recycled only when its refcount proves the releasing call chain holds the
sole remaining references, so any retention — reliability tracking for a
possible retransmit, an unpolled completion on the other side of the
fabric, a parked out-of-order frame — silently vetoes the recycle.
Reused packets get a fresh ``packet_id`` from the same counter as newly
constructed ones, so pooled and allocation-per-packet runs are
indistinguishable to traces, digests, and tests.

Pooling changes wall-clock allocation churn only, never simulated
behaviour; the release side is gated per session by
:class:`repro.config.FastPathConfig` (``pool_wire``). The freelists are
module-global: ``list.pop``/``append`` are atomic under the GIL and a
popped object is exclusively owned, so concurrent kernels stay safe.
"""

from __future__ import annotations

import sys

from ..errors import NetworkError
from .message import Packet, PacketKind, _packet_ids

__all__ = [
    "POOL_MAX",
    "POOL_REFS",
    "refcount",
    "acquire_packet",
    "release_packet",
    "pool_stats",
]

#: recycled Packet objects kept process-wide (allocation churn cap)
POOL_MAX = 512


def _pool_baseline() -> int:
    """Refcount of a function-local object with no other holders.

    On runtimes without refcounts the pools are disabled entirely.
    """
    getrefcount = getattr(sys, "getrefcount", None)
    if getrefcount is None:  # pragma: no cover - non-CPython
        return -1
    probe = object()
    return int(getrefcount(probe))


POOL_REFS = _pool_baseline()
#: ``sys.getrefcount`` when the guard is usable, else None (pools off)
refcount = sys.getrefcount if POOL_REFS > 0 else None

_packet_pool: list[Packet] = []


def acquire_packet(kind: str, src_node: int, dst_node: int, payload_size: int) -> Packet:
    """A wire packet with empty headers and a fresh ``packet_id`` —
    recycled from the freelist when possible, newly constructed otherwise.

    Callers fill ``headers`` themselves; the reuse path applies the same
    validation as :meth:`Packet.__post_init__`.
    """
    pool = _packet_pool
    if pool:
        if kind not in PacketKind.ALL:
            raise NetworkError(f"unknown packet kind {kind!r}")
        if payload_size < 0:
            raise NetworkError(f"negative payload size: {payload_size}")
        packet = pool.pop()
        packet.kind = kind
        packet.src_node = src_node
        packet.dst_node = dst_node
        packet.payload_size = payload_size
        packet.packet_id = next(_packet_ids)
        return packet
    return Packet(kind=kind, src_node=src_node, dst_node=dst_node, payload_size=payload_size)


def release_packet(packet: Packet, holders: int = 1) -> bool:
    """Recycle ``packet`` when the refcount proves the calling chain's
    ``holders`` references are the only ones left; True when pooled.

    ``holders`` counts the caller-side bindings (locals, parameters of
    intermediate frames) that still reference the packet at the moment of
    the call — the default 1 is a single local at the call site.
    """
    if (
        refcount is None
        or len(_packet_pool) >= POOL_MAX
        or refcount(packet) != POOL_REFS + holders
    ):
        return False
    packet.headers.clear()
    _packet_pool.append(packet)
    return True


def pool_stats() -> dict[str, int]:
    """Current freelist occupancy (tests and diagnostics only)."""
    return {"packets": len(_packet_pool)}
