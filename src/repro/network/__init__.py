"""Network substrate: packets, NICs, the interconnect fabric, and the
intra-node shared-memory channel.

The substrate is deliberately *below* protocol level: a NIC moves opaque
packets with realistic timing (PIO vs. DMA, TX serialization, wire
latency/bandwidth) and exposes a completion queue plus activity listeners.
Protocol logic — eager vs. rendezvous, matching, unexpected messages —
belongs to :mod:`repro.nmad`.
"""

from .fabric import Fabric
from .interconnect import (
    Direct,
    Dragonfly,
    FatTree,
    Link,
    Topology,
    make_topology,
    topology_from_config,
)
from .lookahead import (
    fabric_lookahead_us,
    nic_lookahead_us,
    require_lookahead,
    timing_lookahead_us,
)
from .message import CompletionRecord, Packet, PacketKind
from .nic import Nic
from .registration import MemoryRegistry
from .shm import ShmChannel

__all__ = [
    "Packet",
    "PacketKind",
    "CompletionRecord",
    "Nic",
    "Fabric",
    "Topology",
    "Link",
    "Direct",
    "FatTree",
    "Dragonfly",
    "make_topology",
    "topology_from_config",
    "ShmChannel",
    "MemoryRegistry",
    "require_lookahead",
    "nic_lookahead_us",
    "timing_lookahead_us",
    "fabric_lookahead_us",
]
