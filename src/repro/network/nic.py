"""NIC model: TX engine (PIO + DMA), RX queue, completion queue.

Timing model (see :class:`repro.config.NicModel`):

* **PIO** — the *CPU* pushes the bytes to the NIC; the CPU cost is charged
  by the caller (`pio_cpu_us`), and the packet enters the wire immediately
  after.
* **DMA** — the CPU only builds a descriptor (`dma_setup_us`, charged by
  the caller); the NIC reads the payload from host memory and streams it to
  the wire. A NIC has one DMA/TX engine: transmissions serialize. The local
  ``tx_done`` completion is produced when the last byte left the NIC.
* **RX** — the fabric delivers packets into the RX queue and produces an
  ``rx`` completion. Software discovers completions by *polling* the
  completion queue (:meth:`poll`), whose CPU cost is charged by the caller;
  hardware additionally notifies *activity listeners* (used by PIOMan to
  wake idle cores and by the blocking detection method).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..config import NicModel
from ..errors import NetworkError
from ..sim.events import Priority as EventPriority
from ..sim.kernel import Simulator
from .message import CompletionRecord, Packet

__all__ = ["Nic"]


class Nic:
    """One network interface card attached to a node."""

    def __init__(self, sim: Simulator, node_index: int, model: NicModel, fabric: "object") -> None:
        self.sim = sim
        self.node_index = node_index
        self.model = model
        self.fabric = fabric
        self.name = f"n{node_index}.{model.name}"
        self._cq: deque[CompletionRecord] = deque()
        self._tx_free_at: float = 0.0
        self._activity_listeners: list[Callable[[], None]] = []
        # statistics
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.polls = 0
        self.empty_polls = 0

    # -- TX --------------------------------------------------------------------

    def pio_cpu_us(self, packet: Packet) -> float:
        """CPU cost the caller must charge for a PIO submission."""
        return self.model.tx_setup_us + packet.wire_size() * self.model.pio_byte_us

    def submit_pio(self, packet: Packet) -> None:
        """Hand a PIO packet to the wire.

        The caller has *already* charged :meth:`pio_cpu_us`; the packet
        leaves immediately (PIO writes go straight through the NIC FIFO).
        """
        if packet.src_node != self.node_index:
            raise NetworkError(
                f"{self.name}: packet src n{packet.src_node} is not this node"
            )
        self.tx_packets += 1
        self.tx_bytes += packet.wire_size()
        self.fabric.transmit(self, packet, tx_time=0.0)
        self._complete_tx(packet, delay=0.0)

    def submit_dma(self, packet: Packet) -> float:
        """Queue a DMA transmission.

        The caller charges ``dma_setup_us`` itself (descriptor build). The
        NIC serializes transmissions on its single TX engine. Returns the
        virtual time at which the local ``tx_done`` completion is produced
        (useful for tests; protocol code discovers it by polling).
        """
        if packet.src_node != self.node_index:
            raise NetworkError(
                f"{self.name}: packet src n{packet.src_node} is not this node"
            )
        start = max(self.sim.now, self._tx_free_at)
        drain = packet.wire_size() / self.model.wire_bw
        self._tx_free_at = start + drain
        self.tx_packets += 1
        self.tx_bytes += packet.wire_size()
        self.fabric.transmit(self, packet, tx_time=start - self.sim.now)
        done_at = start + drain
        self._complete_tx(packet, delay=done_at - self.sim.now)
        return done_at

    def _complete_tx(self, packet: Packet, delay: float) -> None:
        def _produce() -> None:
            self._cq.append(CompletionRecord("tx_done", packet, self.sim.now))
            self._notify()

        if delay <= 0:
            _produce()
        else:
            self.sim.schedule(delay, _produce, priority=EventPriority.INTERRUPT, label=f"{self.name}.txdone")

    # -- RX --------------------------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """Fabric-side: a packet arrived at this NIC (now)."""
        if packet.dst_node != self.node_index:
            raise NetworkError(
                f"{self.name}: packet for n{packet.dst_node} delivered here"
            )
        self.rx_packets += 1
        self.rx_bytes += packet.wire_size()
        self._cq.append(CompletionRecord("rx", packet, self.sim.now))
        self._notify()

    # -- completion discovery ----------------------------------------------------

    def poll(self, max_events: int = 16) -> list[CompletionRecord]:
        """Pop up to ``max_events`` completion records.

        The CPU cost of the poll itself (``model.poll_us``) is charged by
        the caller; hardware state is simply consumed here.
        """
        if max_events <= 0:
            raise NetworkError(f"max_events must be > 0, got {max_events}")
        self.polls += 1
        if not self._cq:
            self.empty_polls += 1
            return []
        out: list[CompletionRecord] = []
        while self._cq and len(out) < max_events:
            out.append(self._cq.popleft())
        return out

    def has_completions(self) -> bool:
        return bool(self._cq)

    def pending_completions(self) -> int:
        return len(self._cq)

    def add_activity_listener(self, cb: Callable[[], None]) -> None:
        """Register a callback fired whenever a new completion is produced.

        Listeners run in hardware (sim-callback) context: they must not
        charge CPU — typical use is waking a parked core or setting a
        :class:`repro.marcel.sync.ThreadFlag`.
        """
        self._activity_listeners.append(cb)

    def remove_activity_listener(self, cb: Callable[[], None]) -> None:
        """Deregister a listener; no-op if it is not registered."""
        try:
            self._activity_listeners.remove(cb)
        except ValueError:
            pass

    def _notify(self) -> None:
        for cb in self._activity_listeners:
            cb()

    # -- introspection -------------------------------------------------------------

    def tx_busy(self) -> bool:
        """True while the DMA/TX engine is draining earlier packets."""
        return self._tx_free_at > self.sim.now

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Nic {self.name} cq={len(self._cq)} tx_free_at={self._tx_free_at:.2f}>"
