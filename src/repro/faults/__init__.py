"""Deterministic fault injection for the network stack.

The paper's testbed assumes a lossless NIC; this subsystem lets the
reproduction drop, corrupt, delay, and duplicate packets on the simulated
fabric — deterministically, from a seeded :class:`FaultPlan` — so the
progression engines can be evaluated under adverse conditions instead of
only the happy path. Recovery lives in :mod:`repro.nmad.reliability`; the
fault *model* lives here and plugs into :class:`repro.network.fabric.Fabric`
through :class:`FaultInjector` (see ``docs/faults.md``).
"""

from .inject import FaultDecision, FaultInjector
from .plan import FaultAction, FaultPlan, FaultRule, LinkFlap, NicStall

__all__ = [
    "FaultAction",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "LinkFlap",
    "NicStall",
]
