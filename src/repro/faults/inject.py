"""The injection hook between a :class:`FaultPlan` and the fabric.

:meth:`FaultInjector.decide` is called by :meth:`repro.network.fabric.Fabric.
transmit` once per packet handed to the wire; it folds every rule, link-flap
window, and NIC-stall window of the plan into one :class:`FaultDecision`.
Decisions are deterministic: probabilistic rules draw from per-rule RNG
substreams seeded from the plan, and the fabric calls ``decide`` in event
order, so the same plan over the same workload replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.rng import RngStreams
from .plan import FaultAction, FaultPlan

__all__ = ["FaultDecision", "FaultInjector"]


@dataclass
class FaultDecision:
    """What the fabric should do with one packet."""

    deliver: bool = True
    corrupt: bool = False
    extra_delay_us: float = 0.0
    duplicates: int = 0
    cause: str | None = None


class FaultInjector:
    """Applies a :class:`FaultPlan` to packets crossing a fabric."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = RngStreams(plan.seed)
        #: per-rule counters of packets that matched the static filters
        self._matched: list[int] = [0] * len(plan.rules)
        #: per-rule counters of firings (for max_count caps)
        self._fired: list[int] = [0] * len(plan.rules)
        # statistics
        self.packets_seen = 0
        self.drops = 0
        self.corruptions = 0
        self.delays = 0
        self.duplicates = 0
        self.flap_drops = 0
        self.stall_delays = 0

    # -- decision ------------------------------------------------------------------

    def decide(self, packet, now: float) -> FaultDecision:
        """Fold the whole plan into one decision for ``packet`` at ``now``."""
        self.packets_seen += 1
        decision = FaultDecision()
        for flap in self.plan.flaps:
            if flap.is_down(packet, now):
                self.flap_drops += 1
                decision.deliver = False
                decision.cause = "flap"
                return decision
        for i, rule in enumerate(self.plan.rules):
            if not rule.matches(packet, now):
                continue
            self._matched[i] += 1
            if not self._rule_fires(i, rule):
                continue
            self._fired[i] += 1
            if rule.action == FaultAction.DROP:
                self.drops += 1
                decision.deliver = False
                decision.cause = "drop"
                return decision
            if rule.action == FaultAction.CORRUPT:
                self.corruptions += 1
                decision.corrupt = True
                decision.cause = decision.cause or "corrupt"
            elif rule.action == FaultAction.DELAY:
                self.delays += 1
                decision.extra_delay_us += rule.delay_us
                decision.cause = decision.cause or "delay"
            elif rule.action == FaultAction.DUPLICATE:
                self.duplicates += 1
                decision.duplicates += 1
                decision.cause = decision.cause or "duplicate"
        for stall in self.plan.stalls:
            extra = stall.stall_delay(packet, now)
            if extra > 0.0:
                self.stall_delays += 1
                decision.extra_delay_us += extra
                decision.cause = decision.cause or "stall"
        return decision

    def _rule_fires(self, index: int, rule) -> bool:
        if rule.max_count is not None and self._fired[index] >= rule.max_count:
            return False
        if rule.every_nth and self._matched[index] % rule.every_nth == 0:
            return True
        if rule.rate > 0.0:
            # one substream per rule: adding a rule never perturbs the draws
            # of the others (same contract as RngStreams itself)
            return bool(self._rng.stream(f"rule{index}").random() < rule.rate)
        return False

    # -- reporting -----------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counters for harness reports."""
        return {
            "packets_seen": self.packets_seen,
            "drops": self.drops,
            "corruptions": self.corruptions,
            "delays": self.delays,
            "duplicates": self.duplicates,
            "flap_drops": self.flap_drops,
            "stall_delays": self.stall_delays,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FaultInjector seen={self.packets_seen} drops={self.drops} "
            f"corrupt={self.corruptions} delay={self.delays} dup={self.duplicates}>"
        )
