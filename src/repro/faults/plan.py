"""Fault plans: seeded, declarative schedules of network misbehaviour.

A :class:`FaultPlan` is pure data — which packets to drop/corrupt/delay/
duplicate, when links flap, when NICs stall — plus a seed. All stochastic
choices are made by :class:`repro.faults.inject.FaultInjector` from named
:class:`repro.sim.rng.RngStreams` substreams derived from that seed, so a
plan replays identically run after run (the determinism contract of
DESIGN.md §5 extends to injected faults).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["FaultAction", "FaultRule", "LinkFlap", "NicStall", "FaultPlan"]


class FaultAction:
    """Actions a :class:`FaultRule` can apply to a matching packet."""

    DROP = "drop"  # packet never arrives
    CORRUPT = "corrupt"  # packet arrives flagged corrupted (receiver discards)
    DELAY = "delay"  # packet arrives ``delay_us`` late
    DUPLICATE = "duplicate"  # packet arrives twice

    ALL = (DROP, CORRUPT, DELAY, DUPLICATE)


@dataclass(frozen=True)
class FaultRule:
    """One packet-level fault source.

    A rule matches a packet when every filter (source node, destination
    node, packet kinds, active time window) accepts it; it then *fires*
    either periodically (``every_nth`` matching packet) or probabilistically
    (``rate``, drawn from the rule's own RNG substream). ``max_count`` caps
    total firings.

    Examples
    --------
    Drop 10 % of all packets::

        FaultRule(FaultAction.DROP, rate=0.1)

    Drop every 3rd packet headed to node 1 after t=500 µs::

        FaultRule(FaultAction.DROP, every_nth=3, dst_node=1, after_us=500.0)
    """

    action: str
    rate: float = 0.0
    every_nth: int = 0
    src_node: int | None = None
    dst_node: int | None = None
    kinds: tuple[str, ...] | None = None
    after_us: float = 0.0
    until_us: float = math.inf
    delay_us: float = 25.0
    max_count: int | None = None

    def __post_init__(self) -> None:
        if self.action not in FaultAction.ALL:
            raise ConfigError(
                f"unknown fault action {self.action!r}; expected one of {FaultAction.ALL}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ConfigError(f"rate must be in [0, 1], got {self.rate}")
        if self.every_nth < 0:
            raise ConfigError(f"every_nth must be >= 0, got {self.every_nth}")
        if self.rate == 0.0 and self.every_nth == 0:
            # a rule that can never fire is almost certainly a typo —
            # except rate=0 plans, which the determinism tests rely on
            pass
        if self.delay_us < 0:
            raise ConfigError(f"delay_us must be >= 0, got {self.delay_us}")
        if self.after_us < 0:
            raise ConfigError(f"after_us must be >= 0, got {self.after_us}")
        if self.until_us <= self.after_us:
            raise ConfigError(
                f"until_us ({self.until_us}) must exceed after_us ({self.after_us})"
            )
        if self.max_count is not None and self.max_count < 1:
            raise ConfigError(f"max_count must be >= 1, got {self.max_count}")

    def matches(self, packet, now: float) -> bool:
        """Do the static filters accept this packet at this instant?"""
        if now < self.after_us or now >= self.until_us:
            return False
        if self.src_node is not None and packet.src_node != self.src_node:
            return False
        if self.dst_node is not None and packet.dst_node != self.dst_node:
            return False
        if self.kinds is not None and packet.kind not in self.kinds:
            return False
        return True


@dataclass(frozen=True)
class LinkFlap:
    """A link outage window: packets on the matching direction are dropped.

    ``src_node``/``dst_node`` of ``None`` match any endpoint. With
    ``period_us > 0`` the outage repeats: the link is down for
    ``up_at - down_at`` µs at the start of every period from ``down_at``.
    """

    down_at: float
    up_at: float
    src_node: int | None = None
    dst_node: int | None = None
    period_us: float = 0.0

    def __post_init__(self) -> None:
        if self.down_at < 0:
            raise ConfigError(f"down_at must be >= 0, got {self.down_at}")
        if self.up_at <= self.down_at:
            raise ConfigError(
                f"up_at ({self.up_at}) must exceed down_at ({self.down_at})"
            )
        if self.period_us < 0:
            raise ConfigError(f"period_us must be >= 0, got {self.period_us}")
        if self.period_us and self.period_us < self.up_at - self.down_at:
            raise ConfigError("period_us shorter than the outage window")

    def is_down(self, packet, now: float) -> bool:
        if self.src_node is not None and packet.src_node != self.src_node:
            return False
        if self.dst_node is not None and packet.dst_node != self.dst_node:
            return False
        if now < self.down_at:
            return False
        if self.period_us:
            return (now - self.down_at) % self.period_us < self.up_at - self.down_at
        return now < self.up_at


@dataclass(frozen=True)
class NicStall:
    """A transient NIC stall: traffic touching ``node`` inside the window is
    held and delivered when the stall ends (plus normal wire time)."""

    start: float
    end: float
    node: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ConfigError(f"end ({self.end}) must exceed start ({self.start})")

    def stall_delay(self, packet, now: float) -> float:
        """Extra delay this stall imposes on ``packet`` sent at ``now``."""
        if self.node is not None and packet.src_node != self.node and packet.dst_node != self.node:
            return 0.0
        if self.start <= now < self.end:
            return self.end - now
        return 0.0


@dataclass
class FaultPlan:
    """A complete, seeded schedule of fabric misbehaviour."""

    rules: list[FaultRule] = field(default_factory=list)
    flaps: list[LinkFlap] = field(default_factory=list)
    stalls: list[NicStall] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")

    # -- convenience constructors ------------------------------------------------

    @classmethod
    def uniform_drop(cls, rate: float, seed: int = 0, **rule_kwargs) -> "FaultPlan":
        """Plan dropping each packet independently with probability ``rate``."""
        return cls(rules=[FaultRule(FaultAction.DROP, rate=rate, **rule_kwargs)], seed=seed)

    @classmethod
    def lossy(
        cls,
        drop: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        delay_us: float = 25.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Plan combining independent per-packet fault probabilities."""
        rules = []
        for action, rate in (
            (FaultAction.DROP, drop),
            (FaultAction.CORRUPT, corrupt),
            (FaultAction.DELAY, delay),
            (FaultAction.DUPLICATE, duplicate),
        ):
            if rate > 0.0:
                rules.append(FaultRule(action, rate=rate, delay_us=delay_us))
        return cls(rules=rules, seed=seed)

    def is_quiet(self) -> bool:
        """True when the plan can never perturb a packet (all rates zero,
        no periodic rules, no windows) — used by the determinism tests."""
        return (
            not self.flaps
            and not self.stalls
            and all(r.rate == 0.0 and r.every_nth == 0 for r in self.rules)
        )
