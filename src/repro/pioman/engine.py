"""The PIOMan progression engine.

This class is the paper's contribution wired together:

* ``isend``/``irecv`` only *register* the request and generate an event
  (Fig. 1, right side) — they return in sub-microsecond time;
* Marcel **triggers** drive progression: the *idle* trigger runs full
  progression (submissions + handshakes + completion polling) on cores
  with nothing better to do; the *timer-tick* and *context-switch*
  triggers run cheap completion detection so busy nodes stay reactive
  (§3.1: "CPU idleness, context switches, timer interrupts");
* waking an idle core to execute an offloaded event costs
  ``tasklet_remote_us`` (the ≈2 µs inter-CPU overhead measured in §4.1);
* ``wait`` first drives any immediately-available work inline ("the
  message is sent inside the wait function" when every core was busy),
  then blocks on the request's completion event; the detection-method
  policy decides whether active polling (idle cores) or the blocking
  kernel-thread call (no idle cores) guards the wait (§2.3).
"""

from __future__ import annotations

from ..marcel.effects import Compute, WaitTEvent
from ..marcel.scheduler import CoreRuntime, MarcelScheduler
from ..marcel.thread import Priority
from ..nmad.core import NmSession
from ..nmad.progress import EngineBase
from .adaptive import AlwaysOffload, OffloadPolicy
from .policy import DetectionPolicy
from .server import EventServer

__all__ = ["PiomanEngine"]


class PiomanEngine(EngineBase):
    """Event-driven multithreaded progression engine."""

    name = "pioman"

    def __init__(self, session: NmSession, offload_policy: OffloadPolicy | None = None) -> None:
        super().__init__(session)
        self.scheduler: MarcelScheduler = session.scheduler
        self.cfg = self.timing.pioman
        self.policy = DetectionPolicy(self.cfg)
        #: §5 future work: adaptive choice of whether to offload at all
        self.offload_policy = offload_policy or AlwaysOffload()
        self._kick_enabled = True
        self.server = EventServer(session, self.scheduler, self.timing, self._kernel_progress)
        # Marcel triggers (§3.1)
        self.scheduler.register_idle_hook(self._idle_hook)
        if self.cfg.timer_trigger:
            self.scheduler.register_tick_hook(self._tick_hook)
        if self.cfg.ctx_switch_trigger:
            self.scheduler.register_switch_hook(self._switch_hook)
        # events: new deferred ops and hardware completions wake idle cores
        session.on_ops_enqueued.append(self._kick)
        self._seen_drivers: set[int] = set()
        self._watch_drivers()
        #: kept by name so close() can deregister it
        self._driver_added_cb = lambda _drv: self._watch_drivers()
        session.on_driver_added.append(self._driver_added_cb)
        # retransmit timers fire in hardware context while every core may be
        # blocked: re-arm the detection paths exactly like a hw completion
        session.on_retransmit_timer.append(self._on_retransmit_timer)
        #: per-core virtual time at which a paid tasklet dispatch lands
        self._dispatch_due: dict[int, float | None] = {
            c.index: None for c in self.scheduler.cores
        }
        #: registered progression hooks (e.g. one per communicator's nbc
        #: progressor): consulted by the idle trigger *before* the generic
        #: session queue, so idle cores prefer advancing structured work
        #: (outstanding collective schedules) over FIFO op draining. A hook
        #: takes the execution context and returns True when it ran work.
        self._progress_hooks: list = []
        # statistics
        self.idle_activations = 0
        self.tick_activations = 0
        self.switch_activations = 0
        self.kicks = 0
        self.offloaded_ops = 0

    # ------------------------------------------------------------------ wiring

    def _watch_drivers(self) -> None:
        """Subscribe to activity of all (current) drivers; called again by
        the session hook when gates are added later.

        Keyed by the driver's monotonic :meth:`~repro.nmad.drivers.base.
        Driver.serial`, NOT by ``id()``: the allocator reuses addresses of
        collected drivers, and a recycled id would make this silently skip
        a brand-new driver (its completions would then only ever be seen by
        polling, never by the activity-driven wakeups).
        """
        for driver in self.session.drivers:
            if driver.serial() not in self._seen_drivers:
                self._seen_drivers.add(driver.serial())
                driver.add_activity_listener(self._on_hw_activity)

    def _on_hw_activity(self) -> None:
        """Hardware context: a completion was produced somewhere."""
        if not self.scheduler.kick_idle():
            # every core is busy: the blocking method (if armed) takes over;
            # otherwise the timer-tick trigger will detect the completion.
            self.server.on_hw_activity()

    def _on_retransmit_timer(self) -> None:
        """Hardware context: an ack timeout queued a retransmit op."""
        if not self.scheduler.kick_idle():
            self.server.on_hw_activity()

    def register_progress_hook(self, hook) -> None:
        """Register a progression hook: ``hook(ctx) -> bool``.

        Called from the idle trigger (and the low-priority tick path)
        before generic op draining; must run at most one bounded unit of
        work per call and return whether it did anything.
        """
        if hook not in self._progress_hooks:
            self._progress_hooks.append(hook)

    def unregister_progress_hook(self, hook) -> None:
        """Remove a registered progression hook; idempotent."""
        self._remove_hook(self._progress_hooks, hook)

    def _run_progress_hooks(self, ctx) -> bool:
        """Offer the context to each registered hook; True if one ran work."""
        for hook in self._progress_hooks:
            if hook(ctx):
                return True
        return False

    def close(self) -> None:
        """Deregister every scheduler/session/driver hook (idempotent)."""
        self._progress_hooks.clear()
        self.scheduler.unregister_idle_hook(self._idle_hook)
        self.scheduler.unregister_tick_hook(self._tick_hook)
        self.scheduler.unregister_switch_hook(self._switch_hook)
        self._remove_hook(self.session.on_ops_enqueued, self._kick)
        self._remove_hook(self.session.on_driver_added, self._driver_added_cb)
        self._remove_hook(self.session.on_retransmit_timer, self._on_retransmit_timer)
        for driver in self.session.drivers:
            driver.remove_activity_listener(self._on_hw_activity)
        self._seen_drivers.clear()
        self.server.close()

    def _kick(self) -> None:
        """An op was enqueued (e.g. a deferred submission): give it to an
        idle core if one exists."""
        if not self._kick_enabled:
            return
        self.kicks += 1
        self.scheduler.kick_idle()

    # ------------------------------------------------------------------ triggers

    def _idle_hook(self, core: CoreRuntime) -> tuple[float, float | None]:
        """Full progression on an idle core (the offloading path, §2.2).

        Executing a steered event on another CPU first pays the inter-CPU
        signalling + tasklet dispatch (§4.1's measured ≈2 µs): the first
        activation after a kick only charges that cost, and the ops run at
        the *next* activation, 2 µs of virtual time later — precisely the
        window in which a burst of isends accumulates for the aggregation
        strategy to coalesce.
        """
        if not self.session.has_work():
            self._dispatch_due[core.index] = None
            return 0.0, None
        self.idle_activations += 1
        due = self._dispatch_due[core.index]
        if self.session.has_pending_ops() and (due is None or self.sim.now + 1e-9 < due):
            cost = self.timing.host.spinlock_us + self.timing.host.tasklet_remote_us
            self._dispatch_due[core.index] = self.sim.now + cost
            self.offloaded_ops += 1
            return cost, 0.0
        self._dispatch_due[core.index] = None
        ctx = self._core_ctx(core.index)
        #: marks work executed here as stolen by an idle core (nbc metrics)
        ctx.idle_steal = True
        ctx.charge(self.timing.host.spinlock_us)
        # one op per activation (§2.1: "each event is run under mutual
        # exclusion … the messages are submitted once at a time") — other
        # cores and threads reaching their wait can interleave between
        # events instead of one core hogging a whole burst; registered
        # progression hooks (outstanding collective schedules) get first
        # claim on the idle cycles
        if not self._run_progress_hooks(ctx):
            self.session.progress(ctx, max_ops=1)
        if self.session.has_pending_ops():
            # more deferred events: invite another idle core to share them
            self.scheduler.sim.call_soon(self.scheduler.kick_idle)
        repoll = 0.0 if self.session.has_work() else None
        return ctx.cpu_us, repoll

    def _tick_hook(self, core: CoreRuntime) -> float:
        """Timer-interrupt trigger.

        On cores running normal application threads this is cheap
        completion detection only. §2.2 additionally allows full event
        processing when the CPU is "idle **or running a low priority
        thread**" — so on LOW/IDLE-priority threads the tick also executes
        one deferred op (the offload steals cycles the application marked
        as expendable).
        """
        cost = 0.0
        current = core.current
        low_prio = current is not None and current.priority >= Priority.LOW
        if low_prio and self.session.has_pending_ops():
            ctx = self._core_ctx(core.index)
            ctx.idle_steal = True
            ctx.charge(self.timing.host.spinlock_us + self.timing.host.tasklet_local_us)
            if not self._run_progress_hooks(ctx):
                self.session.progress(ctx, max_ops=1, poll=False)
            cost += ctx.cpu_us
        if self.session.has_completions():
            self.tick_activations += 1
            ctx = self._core_ctx(core.index)
            ctx.charge(self.timing.host.spinlock_us)
            self.session.poll_completions(ctx)
            cost += ctx.cpu_us
        return cost

    def _switch_hook(self, core: CoreRuntime) -> float:
        """Cheap completion detection at context switches."""
        if not self.session.has_completions():
            return 0.0
        self.switch_activations += 1
        ctx = self._core_ctx(core.index)
        ctx.charge(self.timing.host.spinlock_us)
        self.session.poll_completions(ctx)
        return ctx.cpu_us

    def _core_ctx(self, core_index: int):
        from ..marcel.tasklet import TaskletContext

        return TaskletContext(self.sim, core_index, self.sim.now)

    def _kernel_progress(self, ctx) -> None:
        """Detection executed on behalf of the blocking kernel thread."""
        self.session.progress(ctx, max_ops=self.cfg.max_events_per_activation)

    # ------------------------------------------------------------------ API

    def isend(self, tctx, peer, tag, size, payload=None, buffer_id=None):
        """Register the request and generate an event — nothing else.

        Fig. 1 (right): "(a) request registration, (b) event creation";
        the network submission "(b')" happens wherever PIOMan places it.

        With a non-default offload policy (§5 future work), a submission
        judged not worth the inter-CPU dispatch runs inline right here —
        still under event-granular locking, never under a big lock.
        """
        yield Compute(self.timing.host.request_post_us, kind="service", label="piom.post_send")
        req = self.session.make_send(
            peer, tag, size, payload, buffer_id, producer_core=tctx.thread.core_index
        )
        submit_cost = self.timing.host.memcpy_us(size)
        idle = len(self.scheduler.idle_core_indices())
        if self.offload_policy.decide(size, submit_cost, idle):
            self.session.post_send(req)
            return req
        # inline submission: suppress the idle-core kick, then drain the
        # freshly queued op(s) on this thread
        self._kick_enabled = False
        try:
            self.session.post_send(req)
        finally:
            self._kick_enabled = True
        while self.session.has_pending_ops():
            ctx = self._exec_ctx(tctx)
            ctx.charge(self.timing.host.spinlock_us)
            self.session.progress(ctx, poll=False)
            if ctx.cpu_us > 0:
                yield self._service(ctx, "piom.inline_submit")
        return req

    def irecv(self, tctx, source, tag, size, buffer_id=None):
        yield Compute(self.timing.host.request_post_us, kind="service", label="piom.post_recv")
        req = self.session.make_recv(source, tag, size, buffer_id)
        self.session.post_recv(req)
        return req

    # inline progression is EngineBase._progress_step: pioman only renames
    # the service label and caps events per pass
    step_label = "piom.step"

    def _progress_max_ops(self):
        return self.cfg.max_events_per_activation

    def wait(self, tctx, req):
        while not req.done:
            if self.session.has_work():
                # every CPU was busy: the communicating thread itself makes
                # the communication progress inside the wait (§2.2 end) —
                # one event per pass, so concurrent waiters share the burst
                ctx = self._exec_ctx(tctx)
                ctx.charge(self.timing.host.spinlock_us)
                self.session.progress(ctx, max_ops=1)
                if ctx.cpu_us > 0:
                    yield self._service(ctx, "piom.wait")
                continue
            event = self.session.completion_event(req)
            if event.triggered:
                break
            # blocked from here on: my core becomes available — count it
            my_core = self.scheduler.cores[tctx.thread.core_index]
            idle_after = len(self.scheduler.idle_core_indices())
            if my_core.current is tctx.thread and len(my_core.runqueue) == 0:
                idle_after += 1
            method = self.policy.select(idle_after)
            if method == DetectionPolicy.BLOCK:
                self.server.arm(req)
            yield WaitTEvent(event)
        return req
