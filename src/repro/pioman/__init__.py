"""PIOMan: the event-driven multithreaded communication engine (§2–§3).

PIOMan turns communication progression into *events* executed at Marcel
scheduler safe points, on whatever core is available:

* **submission offloading** (§2.2) — ``isend`` only registers the request
  in the session work list and *generates an event*; an idle core picks it
  up (idle trigger) and performs the expensive copy/PIO submission there,
  overlapping it with the application's computation. If every core is
  busy, the submission happens inside the application's ``wait`` — "the
  offload has no impact on regular computations";
* **asynchronous rendezvous progression** (§2.3) — RTS/CTS handshakes are
  answered from idle cores (polling method) or, when no core is idle, via
  a blocking call on a kernel thread (modelled by a delayed detection with
  ``interrupt_us`` extra latency);
* **event-granular locking** (§2.1) — instead of the baseline's
  library-wide mutex, each event executes under a light spinlock
  (``spinlock_us`` charged per activation).
"""

from .adaptive import AdaptiveOffload, AlwaysOffload, NeverOffload, OffloadPolicy
from .engine import PiomanEngine
from .policy import DetectionPolicy
from .server import EventServer

__all__ = [
    "PiomanEngine",
    "DetectionPolicy",
    "EventServer",
    "OffloadPolicy",
    "AlwaysOffload",
    "NeverOffload",
    "AdaptiveOffload",
]
