"""Adaptive offload policies (§5 future work).

The paper closes with: *"There are still investigations to be done on an
adaptive strategy to choose whether to offload communication or not."*
This module implements that investigation:

* :class:`AlwaysOffload` — the paper's evaluated behaviour: every
  submission becomes a PIOMan event;
* :class:`NeverOffload` — submissions run inline on the sending thread
  (event-granular locking retained, so this is *not* the sequential
  baseline: completion detection still uses the triggers);
* :class:`AdaptiveOffload` — offload only when it can pay for itself:
  an idle core must exist *now*, and the submission cost must exceed the
  inter-CPU/tasklet dispatch overhead by a configurable margin. Tiny
  messages (copy ≪ 2 µs) are cheaper to submit in place.

The ablation bench ``benchmarks/bench_ablation_adaptive.py`` compares the
three policies across message sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["OffloadPolicy", "AlwaysOffload", "NeverOffload", "AdaptiveOffload"]


class OffloadPolicy:
    """Decides, per isend, whether to defer the submission to PIOMan."""

    name = "base"

    def decide(self, size: int, submit_cost_us: float, idle_cores: int) -> bool:
        raise NotImplementedError


@dataclass
class AlwaysOffload(OffloadPolicy):
    """The paper's §4 behaviour: register + generate an event, always."""

    name = "always"
    offloads: int = 0

    def decide(self, size: int, submit_cost_us: float, idle_cores: int) -> bool:
        self.offloads += 1
        return True


@dataclass
class NeverOffload(OffloadPolicy):
    """Submit inline on the calling thread (detection stays event-driven)."""

    name = "never"
    inlines: int = 0

    def decide(self, size: int, submit_cost_us: float, idle_cores: int) -> bool:
        self.inlines += 1
        return False


@dataclass
class AdaptiveOffload(OffloadPolicy):
    """Offload when an idle core exists and the work amortizes the IPI.

    Parameters
    ----------
    dispatch_cost_us:
        What steering the event to another CPU costs (default: the §4.1
        2 µs). Submissions cheaper than ``dispatch_cost_us × margin``
        run inline.
    margin:
        Required benefit factor (>1 demands clear wins).
    require_idle_core:
        If True (default), never defer when all cores are busy — the
        submission would only run inside ``wait`` anyway, and deferring
        just risks aggregation latency.
    """

    name = "adaptive"
    dispatch_cost_us: float = 2.0
    margin: float = 1.0
    require_idle_core: bool = True
    offloads: int = 0
    inlines: int = 0

    def __post_init__(self) -> None:
        if self.dispatch_cost_us < 0:
            raise ConfigError("dispatch_cost_us must be >= 0")
        if self.margin <= 0:
            raise ConfigError("margin must be > 0")

    def decide(self, size: int, submit_cost_us: float, idle_cores: int) -> bool:
        if self.require_idle_core and idle_cores == 0:
            self.inlines += 1
            return False
        if submit_cost_us < self.dispatch_cost_us * self.margin:
            self.inlines += 1
            return False
        self.offloads += 1
        return True
