"""PIOMan event server: blocking-call watches and detection statistics.

The server owns the *blocking detection method* machinery (§2.3, [10]):
when a thread must wait and no core will be idle, a specialized kernel
thread blocks in the driver; the NIC interrupt wakes it ``interrupt_us``
after the hardware event, and the detection then runs at the next
scheduler safe point (a shared tasklet). Requests detected by active
polling never touch the server.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..config import TimingModel
from ..marcel.scheduler import MarcelScheduler
from ..marcel.tasklet import Tasklet
from ..nmad.core import NmSession
from ..nmad.request import NmRequest

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["EventServer"]


class EventServer:
    """Blocking-watch registry for one node's PIOMan instance."""

    def __init__(
        self,
        session: NmSession,
        scheduler: MarcelScheduler,
        timing: TimingModel,
        progress_cb: Callable[[object], None],
    ) -> None:
        self.session = session
        self.scheduler = scheduler
        self.timing = timing
        self._armed: set[int] = set()
        self._interrupt_scheduled = False
        #: the "kernel detection" work, run as a shared tasklet at the next
        #: safe point of any core
        self._detect_tasklet = Tasklet(self._run_detection, name="piom.kdetect")
        self._progress_cb = progress_cb
        session.on_request_complete.append(self._on_complete)
        # statistics
        self.blocking_waits = 0
        self.interrupts_taken = 0

    def close(self) -> None:
        """Detach from the session; armed watches are abandoned. Part of the
        engine teardown contract (see :meth:`EngineBase.close`)."""
        try:
            self.session.on_request_complete.remove(self._on_complete)
        except ValueError:
            pass
        self._armed.clear()

    def arm(self, req: NmRequest) -> None:
        """Watch ``req`` with the blocking method until it completes."""
        if req.req_id not in self._armed:
            self._armed.add(req.req_id)
            req.blocking_watch = True
            self.blocking_waits += 1

    def armed_count(self) -> int:
        return len(self._armed)

    def _on_complete(self, req: NmRequest) -> None:
        self._armed.discard(req.req_id)
        req.blocking_watch = False

    def on_hw_activity(self) -> None:
        """Hardware produced a completion while blocking watches are armed:
        the kernel thread unblocks after the interrupt cost, then schedules
        the detection at a safe point."""
        if not self._armed or self._interrupt_scheduled:
            return
        self._interrupt_scheduled = True
        self.interrupts_taken += 1
        self.scheduler.sim.schedule(
            self.timing.nic.interrupt_us, self._fire_detection, label="piom.interrupt"
        )

    def _fire_detection(self) -> None:
        self._interrupt_scheduled = False
        self.scheduler.tasklets.schedule(self._detect_tasklet, core_index=None)

    def _run_detection(self, ctx) -> None:
        """Tasklet body: consume completions on behalf of blocked waiters."""
        ctx.charge(self.timing.host.syscall_us)
        self._progress_cb(ctx)
