"""Detection-method selection policy.

§3.1: *"PIOMAN is able to choose the most appropriate method (polling or
interrupt-based blocking call) depending on the context (number of
computing threads, available CPUs, etc.)"*; §3.2: *"if a CPU is idle …
PIOMAN can actively poll the network … When no CPU is idle, PIOMAN is
obviously less intrusive and uses a blocking call on a specialized kernel
thread."*
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PiomanConfig

__all__ = ["DetectionPolicy"]


@dataclass
class DetectionPolicy:
    """Chooses between active polling and the blocking kernel-thread call."""

    cfg: PiomanConfig

    # statistics
    poll_choices: int = 0
    block_choices: int = 0

    POLL = "poll"
    BLOCK = "block"

    def select(self, idle_cores: int) -> str:
        """Pick the detection method given the number of idle cores
        available once the caller has blocked."""
        if (
            self.cfg.allow_blocking_calls
            and idle_cores < self.cfg.blocking_idle_core_threshold
        ):
            self.block_choices += 1
            return DetectionPolicy.BLOCK
        self.poll_choices += 1
        return DetectionPolicy.POLL
